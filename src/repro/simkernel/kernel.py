"""The simulation event loop.

A :class:`Simulator` owns an agenda of triggered events organised as a
*bucket queue*: a binary heap of distinct timestamps plus, per
timestamp, a FIFO list of the events scheduled for it (the *cohort*).
``run()`` drains cohorts in timestamp order, advancing the clock once
per cohort, and dispatches callbacks.  Processes are plain Python
generators wrapped by :class:`repro.simkernel.process.Process`.

Hot-path notes
--------------
The old agenda was a single ``(time, priority, seq, event)`` heap, which
paid two O(log n) sift passes plus a 4-tuple allocation for every event.
Discrete-event workloads are heavily *cohorted* — synchronized
processes, co-scheduled transmissions and monitor rounds land many
events on the same timestamp — so the agenda now amortises the heap
work across each cohort: one ``heappush``/``heappop`` of a bare float
per *distinct* timestamp, and a plain ``list.append`` per event.
Within a bucket, append order is dispatch order: sequence numbers are
monotone, so FIFO order *is* the old ``(time, priority, seq)`` order
for normal-priority events.  A timestamp holding a single event — the
common case on wire-transfer paths, whose float arithmetic rarely
collides — stores the event directly in the bucket dict and the list
only materialises when a cohort actually forms, so singleton schedules
allocate nothing.

Urgent events (priority ``URGENT``: process initialization and
interrupts) are always scheduled *at the current time* and must preempt
every normal event of that timestamp, so they live in a dedicated FIFO
drained before the agenda is touched and re-checked after every
dispatch.  This reproduces the old heap's ``(time, 0, seq)``-pops-first
ordering exactly.

``run()`` inlines the dispatch body instead of calling :meth:`step` per
event, hoisting the agenda structures, the bound list methods and the
clock update (once per cohort, not per event) into locals.  The inlined
body is kept equivalent to :meth:`step`: same dispatch order, same
clock values, same callback runs, so the seeded event trace is
identical whichever loop ran it.  The ``until=Event`` form rides the
same fast loop (stopping right after the target's dispatch) instead of
paying a per-event ``step()`` call.

Processed :class:`~repro.simkernel.events.Timeout` objects are
recycled through a bounded free list.  A timeout is only reclaimed
when, after dispatch, the loop's local variable holds the *only*
remaining reference (checked via ``sys.getrefcount``): any timeout a
process or condition still points at keeps its identity and its
``value`` forever, exactly as before.  Recycling is therefore
invisible to simulation semantics; it only spares the allocator the
dominant object churn of the inner loop.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple, Union

from repro.simkernel.errors import SimulationError
from repro.simkernel.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Process
from repro.simkernel.rng import RngRegistry

#: Sentinel meaning "run until the agenda drains".
FOREVER = None

#: Upper bound on the timeout free list (plenty for any experiment's
#: steady-state churn; bounds worst-case idle memory).
_POOL_LIMIT = 4096


class EmptySchedule(SimulationError):
    """Raised internally when the agenda is exhausted."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see
        :class:`~repro.simkernel.rng.RngRegistry`).  Two simulators built
        with the same seed and the same model produce identical traces.
    trace:
        When true, every dispatched event is appended to
        :attr:`trace_log` — handy in tests that assert on event order.
    trace_limit:
        Optional bound on :attr:`trace_log`.  When set, the log is a
        ring buffer keeping only the most recent ``trace_limit``
        entries, so long traced experiment runs cannot grow memory
        without bound.  ``None`` (the default) keeps everything.
    """

    def __init__(self, seed: int = 0, trace: bool = False,
                 trace_limit: Optional[int] = None) -> None:
        if trace_limit is not None and trace_limit < 1:
            raise ValueError("trace_limit must be a positive integer")
        self._now: float = 0.0
        #: heap of distinct timestamps that have a pending bucket
        self._times: List[float] = []
        #: timestamp -> its pending events: a lone Event, or a list of
        #: events in schedule order once a cohort forms
        self._buckets: Dict[float, Any] = {}
        #: urgent events (inits, interrupts) at the current time; always
        #: dispatched before any bucket entry of the same timestamp
        self._urgent: deque = deque()
        self.rng = RngRegistry(seed)
        self.trace = trace
        self.trace_limit = trace_limit
        self.trace_log: Union[List[Tuple[float, str]], deque] = (
            deque(maxlen=trace_limit) if trace_limit is not None else []
        )
        self._active_process: Optional[Process] = None
        #: free list of processed, otherwise-unreferenced Timeouts
        self._timeout_pool: List[Timeout] = []
        #: optional hook called as ``spawn_observer(child, spawner)``
        #: whenever :meth:`process` registers a new process; the tracer
        #: uses it to inherit span context into spawned processes
        self.spawn_observer: Optional[Callable[[Process, Optional[Process]], None]] = None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event constructors ----------------------------------------------

    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            when = self._now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = timeout
                heappush(self._times, when)
            elif type(bucket) is list:
                bucket.append(timeout)
            else:
                buckets[when] = [bucket, timeout]
            return timeout
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a process and start it immediately."""
        proc = Process(self, generator, name=name)
        if self.spawn_observer is not None:
            self.spawn_observer(proc, self._active_process)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing when any event in ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling (kernel-internal) --------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the agenda.

        Urgent events preempt every normal event of the same timestamp;
        the kernel only ever needs them *now* (process initialization,
        interrupts), which is what lets them live in a plain FIFO
        instead of forcing a priority field onto every bucket entry.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if priority == NORMAL:
            when = self._now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = event
                heappush(self._times, when)
            elif type(bucket) is list:
                bucket.append(event)
            else:
                buckets[when] = [bucket, event]
        else:
            if delay:
                raise ValueError(
                    "urgent events must be scheduled at the current time"
                )
            self._urgent.append(event)

    def cancel(self, event: Event) -> bool:
        """Withdraw a scheduled, not-yet-dispatched normal event.

        The shutdown primitive periodic components need: interrupting a
        process that waits on ``timeout(interval)`` detaches the waiter
        but leaves the timeout itself on the agenda until its fire time,
        so a "stopped" component would still hold a standing agenda
        entry (and keep ``run()`` busy until it lapses).  ``cancel``
        removes the event outright; when its bucket empties, the
        timestamp is dropped from the time heap too, so a fully drained
        simulation reports ``peek() == inf`` immediately.

        Returns ``True`` when the event was found and removed, ``False``
        when it was never scheduled, already dispatched, or urgent.

        Contract: only cancel events scheduled strictly in the future
        (``delay > 0``).  Periodic sweep timeouts always are; cancelling
        an event out of the cohort currently being dispatched is not
        supported.
        """
        if event._processed:
            return False
        buckets = self._buckets
        for when, bucket in buckets.items():
            if bucket is event:
                del buckets[when]
                self._times.remove(when)
                heapify(self._times)
                return True
            if type(bucket) is list:
                try:
                    bucket.remove(event)
                except ValueError:
                    continue
                if not bucket:
                    del buckets[when]
                    self._times.remove(when)
                    heapify(self._times)
                return True
        return False

    def _recycle(self, event: Event) -> None:
        """Return a processed Timeout to the free list if nothing holds it.

        Caller contract: ``event`` was just dispatched and the caller's
        local is about to go out of scope.  ``getrefcount(event) == 2``
        then means that local plus getrefcount's own argument are the
        only references left, so reuse cannot alias live state.
        """
        if (
            type(event) is Timeout
            and getrefcount(event) == 3  # caller local + our arg + getrefcount arg
            and len(self._timeout_pool) < _POOL_LIMIT
        ):
            # ``defused`` needs no reset: timeouts always succeed, so the
            # failure-delivery paths that set it can never have run.
            event.callbacks = []
            event._processed = False
            event._value = None
            self._timeout_pool.append(event)

    # -- main loop ---------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if agenda empty)."""
        if self._urgent:
            return self._now
        return self._times[0] if self._times else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if self._urgent:
            event = self._urgent.popleft()
            when = self._now
        else:
            times = self._times
            if not times:
                raise EmptySchedule("no more events")
            when = times[0]
            bucket = self._buckets[when]
            if type(bucket) is list:
                event = bucket.pop(0)
                if not bucket:
                    heappop(times)
                    del self._buckets[when]
            else:
                event = bucket
                heappop(times)
                del self._buckets[when]
            self._now = when
        if self.trace:
            self.trace_log.append((when, repr(event)))
        event._dispatch()
        self._recycle(event)

    def run(self, until: Optional[float] = FOREVER) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the agenda drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed and
          return its value (raising its exception if it failed).

        All three forms ride the cohort fast loop (see the module
        docstring) unless :attr:`trace` is on, in which case the
        per-event :meth:`step` debug path runs instead; behaviour and
        event order are identical either way.
        """
        if isinstance(until, Event):
            stop_value: List[Any] = []
            target = until

            def _stop(ev: Event) -> None:
                stop_value.append(ev)

            if target.processed:
                if not target.ok:
                    raise target.value
                return target.value
            target.subscribe(_stop)
            if self.trace:  # debug mode: take the per-event step() path
                while not stop_value:
                    if not (self._urgent or self._times):
                        raise SimulationError(
                            f"simulation ran out of events before {target!r} fired"
                        )
                    self.step()
            else:
                self._fast_drain(float("inf"), stop_value)
                if not stop_value:
                    raise SimulationError(
                        f"simulation ran out of events before {target!r} fired"
                    )
            if not target.ok:
                target.defused = True
                raise target.value
            return target.value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError("cannot run until a time in the past")
            if self.trace:  # debug mode: take the per-event step() path
                while self._urgent or (self._times and self._times[0] <= horizon):
                    self.step()
            else:
                self._fast_drain(horizon, ())
            self._now = horizon
            return None

        if self.trace:  # debug mode: take the per-event step() path
            while self._urgent or self._times:
                self.step()
            return None
        self._fast_drain(float("inf"), ())
        return None

    def _fast_drain(self, horizon: float, stop) -> None:
        """Drain cohorts through ``horizon`` (inclusive), no tracing.

        ``stop`` is a list the ``until=Event`` form's callback appends
        to (draining halts right after the dispatch that filled it) or
        an empty tuple, which reduces the check to a constant-false
        truthiness test for the numeric and drain-everything forms.

        The inlined dispatch body matches :meth:`step` exactly: same
        order, same clock updates, same callback runs, same timeout
        recycling.  A single waiter is the overwhelmingly common case,
        so dispatch indexes the callback list directly instead of
        paying for an iterator per event.
        """
        times = self._times
        buckets = self._buckets
        urgent = self._urgent
        pool = self._timeout_pool
        pop_time = heappop
        timeout_cls = Timeout
        refcount = getrefcount
        while True:
            while urgent:
                event = urgent.popleft()
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callback = callbacks[0]
                        if callback is not None:
                            callback(event)
                    else:
                        for callback in callbacks:
                            if callback is not None:
                                callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
                if stop:
                    return
            if stop:
                return
            if not times:
                return
            when = times[0]
            if when > horizon:
                return
            bucket = buckets[when]
            self._now = when
            if type(bucket) is not list:
                # Singleton bucket: the event rides the dict slot
                # directly.  Remove it before dispatch (same-time
                # schedules from its callbacks re-create the bucket and
                # re-push the timestamp, dispatching right after).
                pop_time(times)
                del buckets[when]
                event = bucket
                bucket = None  # recycle contract: loop local only
                event._processed = True
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callback = callbacks[0]
                        if callback is not None:
                            callback(event)
                    else:
                        for callback in callbacks:
                            if callback is not None:
                                callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
                if (
                    type(event) is timeout_cls
                    and refcount(event) == 2
                    and len(pool) < _POOL_LIMIT
                ):
                    event.callbacks = []
                    event._processed = False
                    event._value = None
                    pool.append(event)
                continue
            i = 0
            try:
                # Cohort drain: every event in the bucket shares this
                # timestamp, so the clock update above happens once per
                # cohort and the heap is untouched until the bucket is
                # exhausted.  Entries are cleared as they dispatch so
                # the free-list refcount contract still sees the loop
                # local as the only remaining reference.
                while i < len(bucket):
                    event = bucket[i]
                    bucket[i] = None
                    i += 1
                    event._processed = True
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            if callback is not None:
                                callback(event)
                        else:
                            for callback in callbacks:
                                if callback is not None:
                                    callback(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    if (
                        type(event) is timeout_cls
                        and refcount(event) == 2
                        and len(pool) < _POOL_LIMIT
                    ):
                        event.callbacks = []
                        event._processed = False
                        event._value = None
                        pool.append(event)
                    if urgent or stop:
                        # urgent arrivals preempt the rest of the
                        # cohort; the outer loop drains them and then
                        # re-enters this bucket at the trimmed index
                        break
            finally:
                # On every exit path (cohort done, urgent preemption,
                # stop hit, or an exception from a callback) the bucket
                # keeps exactly its undispatched tail.
                del bucket[:i]
                if not bucket:
                    pop_time(times)
                    del buckets[when]
