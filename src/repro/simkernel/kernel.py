"""The simulation event loop.

A :class:`Simulator` owns an agenda (binary heap) of triggered events
keyed by ``(time, priority, sequence)``.  ``run()`` pops events in
order, advances the clock, and dispatches callbacks.  Processes are
plain Python generators wrapped by :class:`repro.simkernel.process.Process`.

Hot-path notes
--------------
``run()`` inlines the dispatch body instead of calling :meth:`step`
per event, hoisting the heap, the trace flag and the bound ``heappop``
into locals — the per-event method call and attribute traffic were a
measurable fraction of total runtime.  The inlined body is kept
byte-for-byte equivalent to :meth:`step`: same pop order, same clock
update, same trace entry, same dispatch call, so the seeded event
trace is identical whichever loop ran it.

Processed :class:`~repro.simkernel.events.Timeout` objects are
recycled through a bounded free list.  A timeout is only reclaimed
when, after dispatch, the loop's local variable holds the *only*
remaining reference (checked via ``sys.getrefcount``): any timeout a
process or condition still points at keeps its identity and its
``value`` forever, exactly as before.  Recycling is therefore
invisible to simulation semantics; it only spares the allocator the
dominant object churn of the inner loop.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

from repro.simkernel.errors import SimulationError
from repro.simkernel.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Process
from repro.simkernel.rng import RngRegistry

#: Sentinel meaning "run until the agenda drains".
FOREVER = None

#: Upper bound on the timeout free list (plenty for any experiment's
#: steady-state churn; bounds worst-case idle memory).
_POOL_LIMIT = 4096


class EmptySchedule(SimulationError):
    """Raised internally when the agenda is exhausted."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see
        :class:`~repro.simkernel.rng.RngRegistry`).  Two simulators built
        with the same seed and the same model produce identical traces.
    trace:
        When true, every dispatched event is appended to
        :attr:`trace_log` — handy in tests that assert on event order.
    trace_limit:
        Optional bound on :attr:`trace_log`.  When set, the log is a
        ring buffer keeping only the most recent ``trace_limit``
        entries, so long traced experiment runs cannot grow memory
        without bound.  ``None`` (the default) keeps everything.
    """

    def __init__(self, seed: int = 0, trace: bool = False,
                 trace_limit: Optional[int] = None) -> None:
        if trace_limit is not None and trace_limit < 1:
            raise ValueError("trace_limit must be a positive integer")
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self.rng = RngRegistry(seed)
        self.trace = trace
        self.trace_limit = trace_limit
        self.trace_log: Union[List[Tuple[float, str]], deque] = (
            deque(maxlen=trace_limit) if trace_limit is not None else []
        )
        self._active_process: Optional[Process] = None
        #: free list of processed, otherwise-unreferenced Timeouts
        self._timeout_pool: List[Timeout] = []
        #: optional hook called as ``spawn_observer(child, spawner)``
        #: whenever :meth:`process` registers a new process; the tracer
        #: uses it to inherit span context into spawned processes
        self.spawn_observer: Optional[Callable[[Process, Optional[Process]], None]] = None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event constructors ----------------------------------------------

    def event(self, name: Optional[str] = None) -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        pool = self._timeout_pool
        if pool and delay >= 0:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            self._seq += 1
            heappush(self._heap, (self._now + delay, NORMAL, self._seq, timeout))
            return timeout
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a process and start it immediately."""
        proc = Process(self, generator, name=name)
        if self.spawn_observer is not None:
            self.spawn_observer(proc, self._active_process)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing when any event in ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling (kernel-internal) --------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the agenda."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _recycle(self, event: Event) -> None:
        """Return a processed Timeout to the free list if nothing holds it.

        Caller contract: ``event`` was just dispatched and the caller's
        local is about to go out of scope.  ``getrefcount(event) == 2``
        then means that local plus getrefcount's own argument are the
        only references left, so reuse cannot alias live state.
        """
        if (
            type(event) is Timeout
            and getrefcount(event) == 3  # caller local + our arg + getrefcount arg
            and len(self._timeout_pool) < _POOL_LIMIT
        ):
            # ``defused`` needs no reset: timeouts always succeed, so the
            # failure-delivery paths that set it can never have run.
            event.callbacks = []
            event._processed = False
            event._value = None
            self._timeout_pool.append(event)

    # -- main loop ---------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if agenda empty)."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise EmptySchedule("no more events")
        when, _prio, _seq, event = heappop(self._heap)
        self._now = when
        if self.trace:
            self.trace_log.append((when, repr(event)))
        event._dispatch()
        self._recycle(event)

    def run(self, until: Optional[float] = FOREVER) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the agenda drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed and
          return its value (raising its exception if it failed).

        The numeric and drain forms inline the :meth:`step` body (see
        the module docstring); behaviour and event order are identical.
        """
        if isinstance(until, Event):
            stop_value: List[Any] = []
            target = until

            def _stop(ev: Event) -> None:
                stop_value.append(ev)

            if target.processed:
                if not target.ok:
                    raise target.value
                return target.value
            target.subscribe(_stop)
            while not stop_value:
                if not self._heap:
                    raise SimulationError(
                        f"simulation ran out of events before {target!r} fired"
                    )
                self.step()
            if not target.ok:
                target.defused = True
                raise target.value
            return target.value

        heap = self._heap
        pop = heappop
        pool = self._timeout_pool
        timeout_cls = Timeout
        refcount = getrefcount

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError("cannot run until a time in the past")
            if self.trace:  # debug mode: take the per-event step() path
                while heap and heap[0][0] <= horizon:
                    self.step()
            else:
                # Inlined step() body (dispatch + timeout recycling);
                # identical pop order, clock updates and callback runs.
                # A single waiter is the overwhelmingly common case, so
                # dispatch indexes the list directly instead of paying
                # for an iterator per event.
                while heap and heap[0][0] <= horizon:
                    when, _prio, _seq, event = pop(heap)
                    self._now = when
                    event._processed = True
                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            if callback is not None:
                                callback(event)
                        else:
                            for callback in callbacks:
                                if callback is not None:
                                    callback(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    if (
                        type(event) is timeout_cls
                        and refcount(event) == 2
                        and len(pool) < _POOL_LIMIT
                    ):
                        event.callbacks = []
                        event._processed = False
                        event._value = None
                        pool.append(event)
            self._now = horizon
            return None

        if self.trace:  # debug mode: take the per-event step() path
            while heap:
                self.step()
            return None
        while heap:
            when, _prio, _seq, event = pop(heap)
            self._now = when
            event._processed = True
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                if len(callbacks) == 1:
                    callback = callbacks[0]
                    if callback is not None:
                        callback(event)
                else:
                    for callback in callbacks:
                        if callback is not None:
                            callback(event)
            if event._ok is False and not event.defused:
                raise event._value
            if (
                type(event) is timeout_cls
                and refcount(event) == 2
                and len(pool) < _POOL_LIMIT
            ):
                event.callbacks = []
                event._processed = False
                event._value = None
                pool.append(event)
        return None
