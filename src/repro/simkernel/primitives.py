"""Queueing primitives: stores, resources, containers.

These model the shared structures the Grid substrate is built from:

* :class:`Store` — a FIFO buffer of items (service mailboxes, job queues);
* :class:`PriorityStore` — like a store but get() returns smallest item;
* :class:`Resource` — ``capacity`` interchangeable servers with a FIFO
  wait queue (worker pools, CPU cores at the RPC level);
* :class:`Container` — a continuous quantity (disk space, heap bytes);
* :func:`bounded_gather` — run sub-generators concurrently with a
  fan-out bound, collecting per-item outcomes in input order.

All follow the same pattern: ``put``/``get``/``request`` return events
that a process yields; the primitive fires them as capacity allows.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Deque, Generator, List, Sequence, Tuple

from repro.simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator


def bounded_gather(
    sim: "Simulator",
    factories: Sequence[Callable[[], Generator]],
    limit: int = 0,
    name: str = "gather",
) -> Generator:
    """Run generator ``factories`` concurrently, at most ``limit`` at once.

    A sub-generator (``outcomes = yield from bounded_gather(...)``) that
    starts each factory's generator in its own process and waits for all
    of them.  ``limit <= 0`` means unbounded fan-out; otherwise a fixed
    pool of ``limit`` worker processes pulls the remaining items in
    input order, so item *k* never starts before item *k - limit* has a
    worker free — the deterministic bounded-parallelism shape used by
    candidate probing and rollouts.

    Returns a list of ``(ok, value)`` pairs in input order: ``(True,
    result)`` for items that returned, ``(False, exception)`` for items
    that raised.  Failures never crash the gathering process; callers
    decide how to surface them.
    """
    factories = list(factories)
    if not factories:
        return []
    outcomes: List[Tuple[bool, Any]] = [(False, None)] * len(factories)

    def run_one(index: int) -> Generator:
        try:
            value = yield from factories[index]()
            outcomes[index] = (True, value)
        except Exception as error:
            outcomes[index] = (False, error)

    pending: Deque[int] = deque(range(len(factories)))

    def worker() -> Generator:
        while pending:
            yield from run_one(pending.popleft())

    width = len(factories) if limit <= 0 else min(limit, len(factories))
    procs = [sim.process(worker(), name=f"{name}-{slot}") for slot in range(width)]
    yield sim.all_of(procs)
    return outcomes


class StorePut(Event):
    """Pending put of ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, sim: "Simulator", item: Any) -> None:
        super().__init__(sim)
        self.item = item


class StoreGet(Event):
    """Pending get from a store; fires with the item as value."""

    __slots__ = ()


class Store:
    """A FIFO item buffer with optional capacity bound.

    ``put(item)`` blocks (the returned event stays pending) while the
    buffer is full; ``get()`` blocks while it is empty.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        #: FIFO buffer; a deque so the hot ``get()`` path pops the head
        #: in O(1) instead of ``list.pop(0)``'s O(n) shift
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiting_getters(self) -> int:
        """Number of get() calls currently blocked."""
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        """Number of put() calls currently blocked."""
        return len(self._putters)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; event fires when the item is accepted."""
        event = StorePut(self.sim, item)
        self._putters.append(event)
        self._settle()
        return event

    def get(self) -> StoreGet:
        """Remove the oldest item; event fires with the item."""
        event = StoreGet(self.sim)
        self._getters.append(event)
        self._settle()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the buffer is full."""
        if len(self.items) >= self.capacity and not self._getters:
            return False
        self.put(item)
        return True

    # -- internal ----------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and self._do_put(self._putters[0]):
                self._putters.popleft()
                progressed = True
            while self._getters and self._do_get(self._getters[0]):
                self._getters.popleft()
                progressed = True


class PriorityStore(Store):
    """A store whose ``get()`` returns the smallest item first.

    Items must be mutually comparable; use ``(priority, seq, payload)``
    tuples or objects implementing ``__lt__``.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        super().__init__(sim, capacity)
        self.items: List[Any] = []  # heapq needs list storage, not a deque
        self._counter = 0

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            heappush(self.items, event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(heappop(self.items))
            return True
        return False


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, sim: "Simulator", resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable servers with a FIFO wait queue."""

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self.queue)

    def request(self) -> Request:
        """Claim a slot; the event fires once a slot is granted."""
        event = Request(self.sim, self)
        self.queue.append(event)
        self._grant()
        return event

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``.

        Releasing a request that was never granted cancels it from the
        wait queue instead (used when a waiter is interrupted).
        """
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
        self._grant()

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed(request)


class Container:
    """A continuous quantity with blocking put/get (disk, heap bytes)."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        initial: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("container capacity must be positive")
        if not 0 <= initial <= capacity:
            raise ValueError("initial level out of range")
        self.sim = sim
        self.capacity = capacity
        self.level = initial
        self._putters: Deque[Tuple[Event, float]] = deque()
        self._getters: Deque[Tuple[Event, float]] = deque()

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would overflow capacity."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self.level += amount
                    event.succeed()
                    self._putters.popleft()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self.level -= amount
                    event.succeed(amount)
                    self._getters.popleft()
                    progressed = True
