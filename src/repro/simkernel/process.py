"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator yields
:class:`~repro.simkernel.events.Event` objects; when a yielded event is
dispatched, the process resumes with the event's value (or the event's
exception is thrown into it).  A process is itself an event that fires
when the generator returns, so processes can wait on each other.

Hot-path notes
--------------
:meth:`Process._resume` is the single most-executed function in any
experiment: it runs once per dispatched event a process waits on.  It
therefore (a) caches its own bound-method reference (``_resume_cb``) so
subscribing does not allocate a fresh bound method per wait, (b) takes
a dedicated branch for the dominant ``yield sim.timeout(...)`` case
that appends to the waiter list directly, and (c) reads the kernel's
``_ok``/``_processed`` slots instead of going through properties.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.simkernel.errors import Interrupt, SimulationError, StopProcess
from repro.simkernel.events import URGENT, Event, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator


class _Initialize(Event):
    """Kick-start event that runs the first step of a new process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        self.sim = sim
        self.name = f"init({process.name})"
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._processed = False
        self.defused = False
        sim._schedule(self, priority=URGENT)


class Process(Event):
    """A running generator; also an event firing at termination."""

    __slots__ = ("generator", "_target", "_resume_cb")

    def __init__(
        self, sim: "Simulator", generator: Generator, name: Optional[str] = None
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        #: the event this process currently waits on (None when running
        #: its first step or already terminated).
        self._target: Optional[Event] = None
        #: the one bound-method object used for every subscription
        self._resume_cb = self._resume
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting detaches it from its wait target first (the
        waiter slot is tombstoned — see ``Event.unsubscribe``).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.sim, name=f"interrupt({self.name})")
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume_cb)
        self.sim._schedule(interrupt_event, priority=URGENT)
        if self._target is not None:
            self._target.unsubscribe(self._resume_cb)
            self._target = None

    # -- stepping (kernel-internal) ----------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        sim._active_process = self
        generator = self.generator
        send = generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                self.succeed(stop.value)
                return
            except StopProcess as stop:
                sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                sim._active_process = None
                self.fail(error)
                return

            # Fast path: a live (unprocessed) Timeout — the dominant
            # thing processes wait on.  Append the cached bound method
            # directly; the generic checks below are redundant here.
            if type(next_event) is Timeout:
                callbacks = next_event.callbacks
                if callbacks is not None:
                    callbacks.append(self._resume_cb)
                    self._target = next_event
                    sim._active_process = None
                    return
                # already processed: resume immediately with its outcome
                event = next_event
                continue

            if not isinstance(next_event, Event):
                sim._active_process = None
                crash = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                generator.close()
                self.fail(crash)
                return

            if next_event._processed:
                # Already happened: resume immediately with its outcome.
                event = next_event
                continue
            next_event.callbacks.append(self._resume_cb)
            self._target = next_event
            sim._active_process = None
            return
