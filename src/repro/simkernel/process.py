"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator yields
:class:`~repro.simkernel.events.Event` objects; when a yielded event is
dispatched, the process resumes with the event's value (or the event's
exception is thrown into it).  A process is itself an event that fires
when the generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.simkernel.errors import Interrupt, SimulationError, StopProcess
from repro.simkernel.events import URGENT, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel.kernel import Simulator


class _Initialize(Event):
    """Kick-start event that runs the first step of a new process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim, name=f"init({process.name})")
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, priority=URGENT)


class Process(Event):
    """A running generator; also an event firing at termination."""

    __slots__ = ("generator", "_target")

    def __init__(
        self, sim: "Simulator", generator: Generator, name: Optional[str] = None
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        #: the event this process currently waits on (None when running
        #: its first step or already terminated).
        self._target: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting detaches it from its wait target first.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.sim, name=f"interrupt({self.name})")
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, priority=URGENT)
        if self._target is not None:
            self._target.unsubscribe(self._resume)
            self._target = None

    # -- stepping (kernel-internal) ----------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.sim._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self.generator.send(event._value)
                else:
                    event.defused = True
                    next_event = self.generator.throw(event._value)
            except StopIteration as stop:
                self.sim._active_process = None
                self.succeed(stop.value)
                return
            except StopProcess as stop:
                self.sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                self.sim._active_process = None
                self.fail(error)
                return

            if not isinstance(next_event, Event):
                self.sim._active_process = None
                crash = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self.generator.close()
                self.fail(crash)
                return

            if next_event.processed:
                # Already happened: resume immediately with its outcome.
                event = next_event
                continue
            next_event.subscribe(self._resume)
            self._target = next_event
            self.sim._active_process = None
            return
