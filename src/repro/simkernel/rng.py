"""Deterministic named random-number streams.

Every stochastic model component draws from its own named stream so
that adding a new source of randomness does not perturb existing ones —
the standard trick for reproducible parallel/discrete-event simulation.
Streams are derived from a master seed via ``numpy.random.SeedSequence``
spawning keyed by the stream name, so ``RngRegistry(7).stream("net")``
is identical across runs and across machines.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            # Mix the stream name into the seed material deterministically.
            name_key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(name_key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw on ``[low, high)`` from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def normal_clipped(self, name: str, mean: float, sd: float, floor: float = 0.0) -> float:
        """A normal draw clipped below at ``floor`` (service-time jitter)."""
        return max(floor, float(self.stream(name).normal(mean, sd)))

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw on ``[low, high)`` from stream ``name``."""
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, items):
        """Choose one element of ``items`` uniformly."""
        seq = list(items)
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.integers(name, 0, len(seq))]
