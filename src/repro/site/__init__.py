"""Grid-site substrate: machines, filesystems, environments.

A Grid site in the reproduction couples a network node runtime (CPU +
services) with the *static site attributes* the super-peer election
ranks on (processor speed, memory, uptime, site name — paper §3.3), a
simulated filesystem that deployments are installed into, and the
default environment variables deploy-files may reference
(``DEPLOYMENT_DIR``, ``USER_HOME``, ``GLOBUS_SCRATCH_DIR``,
``GLOBUS_LOCATION`` — paper §3.4).
"""

from repro.site.description import SiteDescription
from repro.site.filesystem import FileEntry, Filesystem, FilesystemError
from repro.site.gridsite import GridSite

# Re-exported for convenience: the load-average model lives with the CPU.
from repro.simkernel.cpu import LoadAverage

__all__ = [
    "FileEntry",
    "Filesystem",
    "FilesystemError",
    "GridSite",
    "LoadAverage",
    "SiteDescription",
]
