"""Static site attributes and the election rank hashcode.

"In order to rank different sites, a unique hashcode of all grid sites
is calculated based on their static attributes.  These attributes
includes processor speed, memory, uptime and site name.  Well
established hashcode algorithms ensure the uniqueness when invoked by
different GLARE RDM services residing on different sites." (paper §3.3)

We use SHA-256 over a canonical attribute string, truncated to 64 bits
— deterministic across processes and runs, and computable by *any*
site that knows another site's static attributes (which is exactly how
the re-election protocol ranks candidates without a coordinator).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class SiteDescription:
    """Static attributes of one Grid site."""

    name: str
    platform: str = "Intel"
    os: str = "Linux"
    arch: str = "32bit"
    processor_speed_mhz: float = 2800.0
    memory_mb: float = 2048.0
    processors: int = 4
    uptime_hours: float = 1000.0
    #: relative CPU speed multiplier used by the simulation
    speed_factor: float = 1.0
    extra: Dict[str, str] = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")
        if self.processors < 1:
            raise ValueError("processors must be >= 1")
        if self.processor_speed_mhz <= 0 or self.memory_mb <= 0:
            raise ValueError("speed and memory must be positive")

    @classmethod
    def from_info(cls, info: Dict) -> "SiteDescription":
        """Rebuild a description from a ``site_info`` RPC payload.

        The RDM's ``op_site_info`` emits exactly these keys; this is the
        shared decoder used by candidate probing and the provisioning
        site-description cache.
        """
        return cls(
            name=info["name"],
            platform=info["platform"],
            os=info["os"],
            arch=info["arch"],
            processor_speed_mhz=info["processor_speed_mhz"],
            memory_mb=info["memory_mb"],
            processors=info["processors"],
            extra=dict(info.get("extra", {})),
        )

    def canonical_string(self) -> str:
        """Stable serialization of the rank-relevant static attributes."""
        return "|".join(
            [
                self.name,
                f"{self.processor_speed_mhz:.1f}",
                f"{self.memory_mb:.1f}",
                f"{self.uptime_hours:.1f}",
            ]
        )

    def rank_hashcode(self) -> int:
        """The unique 64-bit rank used in super-peer elections."""
        digest = hashlib.sha256(self.canonical_string().encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def satisfies(self, constraints: Dict[str, str]) -> bool:
        """Check installation constraints (platform/os/arch, paper Fig. 9).

        Unknown constraint keys are matched against :attr:`extra`;
        missing keys fail closed (a constraint you can't verify is not
        satisfied).
        """
        for key, wanted in constraints.items():
            wanted_norm = wanted.strip().lower()
            if key == "platform":
                actual = self.platform
            elif key == "os":
                actual = self.os
            elif key == "arch":
                actual = self.arch
            else:
                actual = self.extra.get(key, "")
            if actual.strip().lower() != wanted_norm:
                return False
        return True

    def to_info_document(self):
        """Resource document published to the MDS index (GLUE-flavoured)."""
        from repro.wsrf.xmldoc import Element

        doc = Element(
            "GridSite",
            attrib={
                "name": self.name,
                "platform": self.platform,
                "os": self.os,
                "arch": self.arch,
            },
        )
        doc.make_child("ProcessorSpeedMHz", text=f"{self.processor_speed_mhz:.1f}")
        doc.make_child("MemoryMB", text=f"{self.memory_mb:.1f}")
        doc.make_child("Processors", text=str(self.processors))
        doc.make_child("UptimeHours", text=f"{self.uptime_hours:.1f}")
        return doc
