"""A simulated per-site filesystem.

Deployments are "installed" into this filesystem: archives are
transferred in by GridFTP, expanded by deploy-file steps, and the GLARE
service identifies deployments "by exploring bin sub directory of the
deployed activity home for executables" (paper §2.2/§3.4) — which is
exactly what :meth:`Filesystem.find_executables` supports.

Paths are POSIX-style strings; directories are implicit (created by
``mkdir_p`` or on file creation with ``parents=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


class FilesystemError(Exception):
    """Missing paths, collisions, or malformed operations."""


def normalize(path: str) -> str:
    """Collapse a POSIX path to a canonical absolute form."""
    if not path or not path.startswith("/"):
        raise FilesystemError(f"path must be absolute: {path!r}")
    parts: List[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


def join(base: str, *rest: str) -> str:
    """Join path fragments under an absolute base."""
    out = base
    for fragment in rest:
        if fragment.startswith("/"):
            out = fragment
        else:
            out = out.rstrip("/") + "/" + fragment
    return normalize(out)


@dataclass
class FileEntry:
    """A regular file: size, executability, provenance."""

    path: str
    size: int
    executable: bool = False
    md5sum: str = ""
    source_url: str = ""
    created_at: float = 0.0
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


class Filesystem:
    """Directory tree + file table for one Grid site."""

    def __init__(self) -> None:
        self._dirs = {"/"}
        self._files: Dict[str, FileEntry] = {}

    # -- directories ------------------------------------------------------

    def mkdir_p(self, path: str) -> str:
        """Create a directory and all ancestors; returns the normalized path."""
        path = normalize(path)
        if path in self._files:
            raise FilesystemError(f"cannot mkdir over a file: {path}")
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            self._dirs.add(current)
        return path

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    def exists(self, path: str) -> bool:
        path = normalize(path)
        return path in self._dirs or path in self._files

    def rmtree(self, path: str) -> int:
        """Delete a directory subtree; returns the number of files removed."""
        path = normalize(path)
        if path not in self._dirs:
            raise FilesystemError(f"no such directory: {path}")
        prefix = path.rstrip("/") + "/"
        removed = 0
        for file_path in [p for p in self._files if p.startswith(prefix) or p == path]:
            del self._files[file_path]
            removed += 1
        self._dirs = {d for d in self._dirs if not (d == path or d.startswith(prefix))}
        return removed

    # -- files -------------------------------------------------------------

    def put_file(
        self,
        path: str,
        size: int,
        executable: bool = False,
        md5sum: str = "",
        source_url: str = "",
        created_at: float = 0.0,
        parents: bool = True,
    ) -> FileEntry:
        """Create (or replace) a file."""
        path = normalize(path)
        if size < 0:
            raise FilesystemError("file size must be non-negative")
        if path in self._dirs:
            raise FilesystemError(f"cannot create file over a directory: {path}")
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._dirs:
            if not parents:
                raise FilesystemError(f"parent directory missing: {parent}")
            self.mkdir_p(parent)
        entry = FileEntry(
            path=path,
            size=size,
            executable=executable,
            md5sum=md5sum,
            source_url=source_url,
            created_at=created_at,
        )
        self._files[path] = entry
        return entry

    def get_file(self, path: str) -> FileEntry:
        """Look up a file, raising on absence."""
        path = normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise FilesystemError(f"no such file: {path}")

    def remove_file(self, path: str) -> None:
        path = normalize(path)
        if path not in self._files:
            raise FilesystemError(f"no such file: {path}")
        del self._files[path]

    def listdir(self, path: str) -> List[str]:
        """Immediate children (names, sorted) of a directory."""
        path = normalize(path)
        if path not in self._dirs:
            raise FilesystemError(f"no such directory: {path}")
        prefix = path.rstrip("/") + "/" if path != "/" else "/"
        names = set()
        for d in self._dirs:
            if d != path and d.startswith(prefix):
                names.add(d[len(prefix):].split("/", 1)[0])
        for f in self._files:
            if f.startswith(prefix):
                names.add(f[len(prefix):].split("/", 1)[0])
        return sorted(names)

    def walk_files(self, path: str = "/") -> Iterator[FileEntry]:
        """Iterate over all files under ``path``."""
        path = normalize(path)
        prefix = path.rstrip("/") + "/" if path != "/" else "/"
        for file_path in sorted(self._files):
            if file_path == path or file_path.startswith(prefix):
                yield self._files[file_path]

    def find_executables(self, home: str) -> List[FileEntry]:
        """Executables in ``home``'s ``bin`` subdirectories.

        This is the automatic deployment-identification heuristic from
        the paper: "GLARE service can automatically find, for instance
        by exploring bin sub directory of the deployed activity home".
        """
        home = normalize(home)
        found = []
        for entry in self.walk_files(home):
            parent = entry.path.rsplit("/", 1)[0]
            if entry.executable and parent.rsplit("/", 1)[-1] == "bin":
                found.append(entry)
        return found

    def disk_usage(self) -> Tuple[int, int]:
        """``(file_count, total_bytes)`` across the whole filesystem."""
        return len(self._files), sum(f.size for f in self._files.values())

    def expand_archive(
        self, archive_path: str, dest_dir: str, contents: List[Tuple[str, int, bool]],
        created_at: float = 0.0,
    ) -> List[FileEntry]:
        """Unpack an archive: create ``contents`` under ``dest_dir``.

        ``contents`` is a list of ``(relative_path, size, executable)``.
        The archive itself must exist (it was GridFTP'd in first).
        """
        self.get_file(archive_path)  # raises if the archive is missing
        dest_dir = self.mkdir_p(dest_dir)
        created = []
        for rel_path, size, executable in contents:
            full = join(dest_dir, rel_path)
            created.append(
                self.put_file(full, size, executable=executable, created_at=created_at)
            )
        return created
