"""The Grid-site aggregate: runtime + description + filesystem + env.

One :class:`GridSite` corresponds to one Austrian-Grid site in the
paper: a network node (CPU, deployed services, online flag), the static
attributes used for election ranking, a filesystem deployments are
installed into, and the default environment variables the RDM service
substitutes into deploy-files (paper §3.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.site.description import SiteDescription
from repro.site.filesystem import Filesystem
from repro.simkernel.cpu import LoadAverage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network, NodeRuntime


class GridSite:
    """A simulated Grid site."""

    def __init__(
        self,
        network: "Network",
        description: SiteDescription,
        globus_location: str = "/opt/globus",
    ) -> None:
        self.network = network
        self.description = description
        self.runtime: "NodeRuntime" = network.add_node(
            description.name,
            cores=description.processors,
            speed=description.speed_factor,
        )
        self.fs = Filesystem()
        # Standard directory layout + the default env vars of paper §3.4.
        self.fs.mkdir_p("/home/glare")
        self.fs.mkdir_p("/scratch")
        self.fs.mkdir_p("/opt/deployments")
        self.fs.mkdir_p(globus_location + "/bin")
        self.env: Dict[str, str] = {
            "DEPLOYMENT_DIR": "/opt/deployments",
            "USER_HOME": "/home/glare",
            "GLOBUS_SCRATCH_DIR": "/scratch",
            "GLOBUS_LOCATION": globus_location,
        }
        self.loadavg = LoadAverage(network.sim, self.runtime.cpu)
        self._loadavg_started = False

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def sim(self):
        return self.network.sim

    @property
    def cpu(self):
        return self.runtime.cpu

    def rank(self) -> int:
        """The election rank hashcode of this site."""
        return self.description.rank_hashcode()

    # -- liveness ------------------------------------------------------------

    @property
    def online(self) -> bool:
        return self.runtime.online

    def fail(self) -> None:
        """Take the whole site offline (crash)."""
        self.network.set_online(self.name, False)

    def recover(self) -> None:
        """Bring the site back online."""
        self.network.set_online(self.name, True)

    # -- monitoring ------------------------------------------------------------

    def start_monitoring(self) -> None:
        """Begin sampling the 1-minute load average."""
        if not self._loadavg_started:
            self.loadavg.start()
            self._loadavg_started = True

    # -- environment ------------------------------------------------------------

    def substitute_env(self, text: str, extra: Optional[Dict[str, str]] = None) -> str:
        """Replace ``$VAR`` references with site environment values.

        The RDM service "substitutes their values" for the default
        variables; ``extra`` lets a deploy-file add its own (paper
        Fig. 9 defines e.g. ``POVRAY_HOME = $DEPLOYMENT_DIR/povray/``,
        i.e. definitions may reference other variables).  Longer names
        are substituted first so ``$DEPLOYMENT_DIR`` wins over
        ``$DEPLOY``; substitution iterates to a fixpoint (bounded) so
        nested definitions resolve fully.
        """
        table = dict(self.env)
        if extra:
            table.update(extra)
        keys = sorted(table, key=len, reverse=True)
        for _ in range(5):  # bounded fixpoint: no runaway on cycles
            before = text
            for key in keys:
                value = table[key]
                text = text.replace(f"${{{key}}}", value).replace(f"${key}", value)
            if text == before:
                break
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GridSite {self.name} cores={self.description.processors}>"
