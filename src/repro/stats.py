"""VO-wide metrics collection and reporting.

Aggregates the counters every subsystem already keeps (request
resolution tiers, cache hits, installs, traffic, elections) into one
structured snapshot — the observability layer an operator of the real
system would have had, and a convenient assertion surface for tests.

The per-site counters are sourced through the *site probes* of the VO's
:class:`~repro.obs.MetricsRegistry` — callables registered by
:func:`repro.vo.build_vo` that read each site's live counters on
demand.  Probes work whether or not the hot-path observability
instruments (spans, histograms) are enabled, so this module needs no
``observability=True`` switch.

Byte accounting: :attr:`VOMetrics.total_bytes` counts every message
*leg* once on the wire (request and response are separate legs).  Each
leg is charged to exactly one node's ``bytes_out``, so the wire total
always equals the sum of per-node ``bytes_out`` — member sites plus the
non-member origin host, reported separately as
:attr:`VOMetrics.origin_bytes_out`.  The ``bytes_in`` sum matches too,
except for legs addressed to offline nodes (counted on the wire and at
the sender, never received).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.experiments.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vo import VirtualOrganization


@dataclass
class SiteMetrics:
    """Counters harvested from one site's stack."""

    site: str
    requests: int = 0
    resolved_locally: int = 0
    resolved_in_group: int = 0
    resolved_via_superpeer: int = 0
    resolved_by_deployment: int = 0
    type_lookups: int = 0
    type_cache_hits: int = 0
    deployment_lookups: int = 0
    deployment_cache_hits: int = 0
    installs_succeeded: int = 0
    installs_failed: int = 0
    notifications_sent: int = 0
    jobs_submitted: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    messages_in: int = 0
    messages_out: int = 0
    local_types: int = 0
    cached_types: int = 0
    local_deployments: int = 0
    cached_deployments: int = 0
    is_super_peer: bool = False
    reelections: int = 0


@dataclass
class VOMetrics:
    """A complete VO snapshot."""

    taken_at: float
    sites: Dict[str, SiteMetrics] = field(default_factory=dict)
    total_messages: int = 0
    total_bytes: int = 0
    #: traffic of non-member nodes (the origin pseudo-site): needed to
    #: reconcile per-node sums against the wire total
    origin_bytes_in: int = 0
    origin_bytes_out: int = 0

    # -- aggregates ---------------------------------------------------------

    def total(self, attribute: str) -> int:
        return sum(getattr(m, attribute) for m in self.sites.values())

    @property
    def site_bytes_in(self) -> int:
        """Bytes received, summed over member sites only."""
        return self.total("bytes_in")

    @property
    def site_bytes_out(self) -> int:
        """Bytes sent, summed over member sites only."""
        return self.total("bytes_out")

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire, each message leg counted exactly once."""
        return self.total_bytes

    def cache_hit_rate(self) -> float:
        """Fraction of registry lookups served from a cache."""
        lookups = self.total("type_lookups") + self.total("deployment_lookups")
        hits = self.total("type_cache_hits") + self.total("deployment_cache_hits")
        return hits / lookups if lookups else 0.0

    def resolution_breakdown(self) -> Dict[str, int]:
        """Where get_deployments requests were satisfied."""
        return {
            "local": self.total("resolved_locally"),
            "group": self.total("resolved_in_group"),
            "super-peer": self.total("resolved_via_superpeer"),
            "on-demand-deploy": self.total("resolved_by_deployment"),
        }

    def render(self) -> str:
        """Human-readable metrics table."""
        headers = ["site", "role", "reqs", "local", "group", "sp", "deploy",
                   "types", "deps", "msgs in", "msgs out"]
        rows: List[List] = []
        for name in sorted(self.sites):
            m = self.sites[name]
            rows.append([
                name,
                "SP" if m.is_super_peer else "peer",
                m.requests, m.resolved_locally, m.resolved_in_group,
                m.resolved_via_superpeer, m.resolved_by_deployment,
                f"{m.local_types}+{m.cached_types}",
                f"{m.local_deployments}+{m.cached_deployments}",
                m.messages_in, m.messages_out,
            ])
        breakdown = self.resolution_breakdown()
        footer = (
            f"\nresolution: {breakdown} | cache hit rate "
            f"{self.cache_hit_rate():.1%} | wire: {self.total_messages} msgs, "
            f"{self.wire_bytes / 1e6:.1f} MB | site in/out: "
            f"{self.site_bytes_in / 1e6:.1f}/{self.site_bytes_out / 1e6:.1f} MB "
            f"(origin {self.origin_bytes_in / 1e6:.1f}/"
            f"{self.origin_bytes_out / 1e6:.1f} MB)"
        )
        return format_table(headers, rows,
                            title=f"VO metrics @ t={self.taken_at:.1f}s") + footer


def site_counter_probe(
    vo: "VirtualOrganization", name: str
) -> Callable[[], Dict[str, object]]:
    """Build the probe callable that snapshots site ``name``'s counters.

    The returned callable produces exactly the keyword set of
    :class:`SiteMetrics` (minus ``site``); :func:`repro.vo.build_vo`
    registers it with the VO's metrics registry.
    """

    def probe() -> Dict[str, object]:
        stack = vo.stack(name)
        rdm, atr, adr = stack.rdm, stack.atr, stack.adr
        assert rdm is not None and atr is not None and adr is not None
        runtime = vo.network.node(name)
        rm = rdm.request_manager
        dm = rdm.deployment_manager
        return {
            "requests": rm.requests,
            "resolved_locally": rm.resolved_locally,
            "resolved_in_group": rm.resolved_in_group,
            "resolved_via_superpeer": rm.resolved_via_superpeer,
            "resolved_by_deployment": rm.resolved_by_deployment,
            "type_lookups": atr.lookups,
            "type_cache_hits": atr.cache_hits,
            "deployment_lookups": adr.lookups,
            "deployment_cache_hits": adr.cache_hits,
            "installs_succeeded": dm.stats.installs_succeeded,
            "installs_failed": dm.stats.installs_failed,
            "notifications_sent": dm.stats.notifications_sent,
            "jobs_submitted": stack.gram.jobs_submitted if stack.gram else 0,
            "bytes_in": runtime.bytes_in,
            "bytes_out": runtime.bytes_out,
            "messages_in": runtime.messages_in,
            "messages_out": runtime.messages_out,
            "local_types": len(atr.home),
            "cached_types": len(atr.cache),
            "local_deployments": len(adr.deployments),
            "cached_deployments": len(adr.cached_deployments),
            "is_super_peer": rdm.overlay.is_super_peer,
            "reelections": rdm.overlay.reelections,
        }

    return probe


def collect_metrics(vo: "VirtualOrganization") -> VOMetrics:
    """Harvest a metrics snapshot from every site in the VO.

    Per-site counters come from the metrics registry's site probes
    (available even with observability disabled); wire totals come from
    the network.
    """
    snapshot = VOMetrics(
        taken_at=vo.sim.now,
        total_messages=vo.network.total_messages,
        total_bytes=vo.network.total_bytes,
    )
    registry = vo.obs.metrics
    for name in vo.site_names:
        try:
            data = registry.collect_site(name)
        except KeyError:
            # VO assembled without build_vo: read the counters directly
            data = site_counter_probe(vo, name)()
        snapshot.sites[name] = SiteMetrics(site=name, **data)
    members = set(vo.site_names)
    for node_name, runtime in vo.network.nodes.items():
        if node_name not in members:
            snapshot.origin_bytes_in += runtime.bytes_in
            snapshot.origin_bytes_out += runtime.bytes_out
    return snapshot
