"""Virtual Organization assembly: a whole simulated Grid in one call.

The paper deploys GLARE over the Austrian Grid — "more than ten Grid
sites that aggregate over 200 processors", spread across cities, each
with its own job manager and Globus installation.  :func:`build_vo`
assembles the analogue: N sites with heterogeneous static attributes,
a star-over-WAN topology, and a full service stack per site (Default
Index, GridFTP, GRAM, ATR, ADR, GridARM, RDM), plus one VO-root site
hosting the Community Index and an ``origin`` host that publishes
application archives (standing in for the public internet).

All examples, tests and benchmark drivers build on this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple, Union

from repro.faults import FaultPlane, FaultsConfig
from repro.glare.lifecycle import LifecycleController
from repro.glare.provisioning import ProvisioningConfig
from repro.glare.rdm import GlareRDMService, RDM_SERVICE
from repro.glare.resolution import ResolutionConfig
from repro.glare.registry import ActivityDeploymentRegistry, ActivityTypeRegistry
from repro.glare.storage import StorageConfig
from repro.gram.service import GramService
from repro.gridarm.reservation import ReservationService
from repro.gridftp.service import GridFtpService, UrlCatalog
from repro.mds.index import IndexService
from repro.net.interceptors import RetryPolicy
from repro.net.network import Network
from repro.net.topology import Topology
from repro.net.transport import SecurityPolicy
from repro.obs import MetricsRecorder, Observability
from repro.obs.slo import SLOSpec
from repro.orchestrate.spec import OrchestrationConfig
from repro.simkernel import Simulator
from repro.site.description import SiteDescription
from repro.site.gridsite import GridSite

#: name of the pseudo-site hosting public download URLs
ORIGIN = "origin"


@dataclass
class VOConfig:
    """Knobs for :func:`build_vo` (defaults mirror the paper's testbed)."""

    n_sites: int = 7
    seed: int = 42
    security: bool = False
    cache_enabled: bool = True
    handler: str = "expect"
    group_size: int = 3
    cores_per_site: int = 4
    wan_latency: float = 0.004  # intra-Austria RTT ~8 ms
    wan_bandwidth: float = 12.5e6  # 100 Mbit/s
    gram_overhead: float = 1.0
    gridftp_setup: float = 0.3
    monitors: bool = True
    lifecycle: bool = True
    site_prefix: str = "agrid"
    extra_site_attrs: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: resolution-path scaling switches (``None`` = everything off,
    #: preserving the byte-identical baseline behaviour)
    resolution: Optional[ResolutionConfig] = None
    #: provisioning-path scaling switches (``None`` = everything off,
    #: preserving the byte-identical baseline behaviour)
    provisioning: Optional[ProvisioningConfig] = None
    #: registry storage backend + shard routing (``None`` = flat dict
    #: backend, no routing — byte-identical baseline behaviour)
    storage: Optional[StorageConfig] = None
    #: model fair-share bandwidth contention on shared links; off by
    #: default (the baseline charges every transfer the full bottleneck
    #: bandwidth regardless of concurrency)
    contention: bool = False
    #: tracing + metrics: ``False`` (default, zero-overhead null tracer),
    #: ``True`` (fresh enabled bundle), or a pre-built
    #: :class:`~repro.obs.Observability` instance
    observability: Union[bool, Observability] = False
    #: gauge sampling period of the metrics recorder (when enabled)
    sample_interval: float = 5.0
    #: declarative service-level objectives (empty = no SLO engine, no
    #: pipeline layer — byte-identical baseline behaviour)
    slos: Tuple[SLOSpec, ...] = ()
    #: burn-rate evaluation cadence of the SLO engine (when SLOs set)
    slo_eval_interval: float = 5.0
    #: fault scenario for the VO-wide fault plane (``None`` = disabled,
    #: preserving the byte-identical baseline behaviour)
    faults: Optional[FaultsConfig] = None
    #: default retry policy for every RDM's outbound RPC (``None`` =
    #: legacy single attempts; experiments opt in per series)
    rpc_retry: Optional[RetryPolicy] = None
    #: admission bound on each RDM frontend (``None`` = unbounded;
    #: excess concurrent requests are shed with ``Overloaded``)
    admission_limit: Optional[int] = None
    #: desired-state orchestration (``None`` or a spec-less config =
    #: no reconciler process at all — byte-identical baseline behaviour)
    orchestration: Optional["OrchestrationConfig"] = None
    #: WSRF expiry-sweep cadence of each site's LifecycleController
    #: (orchestration experiments shorten it so drained replicas are
    #: garbage-collected within a reconcile interval or two)
    lifecycle_sweep_interval: float = 10.0


class SiteStack:
    """All services deployed on one VO member site."""

    def __init__(self, site: GridSite) -> None:
        self.site = site
        self.index: Optional[IndexService] = None
        self.gridftp: Optional[GridFtpService] = None
        self.gram: Optional[GramService] = None
        self.atr: Optional[ActivityTypeRegistry] = None
        self.adr: Optional[ActivityDeploymentRegistry] = None
        self.gridarm: Optional[ReservationService] = None
        self.rdm: Optional[GlareRDMService] = None
        self.lifecycle: Optional[LifecycleController] = None

    @property
    def name(self) -> str:
        return self.site.name


class VirtualOrganization:
    """A running VO: simulator + topology + per-site service stacks."""

    def __init__(self, config: VOConfig) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.topology = Topology()
        security = SecurityPolicy.https() if config.security else SecurityPolicy.http()
        if isinstance(config.observability, Observability):
            self.obs = config.observability
        else:
            self.obs = Observability(
                enabled=bool(config.observability),
                sample_interval=config.sample_interval,
                slos=config.slos,
                slo_eval_interval=config.slo_eval_interval,
            )
        self.faults = FaultPlane(self.sim, config.faults)
        if self.obs.health is not None:
            # the health registry consumes crash/restart events live
            self.faults.listeners.append(self.obs.health.on_fault_event)
        self.network = Network(
            self.sim, self.topology, security=security, obs=self.obs,
            contention=config.contention, faults=self.faults,
        )
        self.url_catalog = UrlCatalog()
        self.stacks: Dict[str, SiteStack] = {}
        self.community_site: str = ""
        self.origin: Optional[GridSite] = None
        #: desired-state reconciler (orchestration config only)
        self.reconciler = None

    # -- accessors -----------------------------------------------------------

    @property
    def site_names(self) -> List[str]:
        return list(self.stacks)

    def stack(self, name: str) -> SiteStack:
        return self.stacks[name]

    def rdm(self, name: str) -> GlareRDMService:
        rdm = self.stacks[name].rdm
        assert rdm is not None
        return rdm

    # -- client helpers ----------------------------------------------------------

    def client_call(self, site: str, method: str, payload: Any = None,
                    service: str = RDM_SERVICE) -> Generator:
        """Sub-generator: a client at ``site`` calls its local service."""
        value = yield from self.network.call(site, site, service, method, payload=payload)
        return value

    def run_process(self, generator: Generator, until: Optional[float] = None):
        """Run one client process to completion and return its value."""
        proc = self.sim.process(generator)
        if until is not None:
            self.sim.run(until=until)
            if not proc.triggered:
                raise TimeoutError("client process did not finish in time")
        else:
            self.sim.run(until=proc)
        if not proc.ok:  # pragma: no cover - surfaced by run(until=proc)
            raise proc.value
        return proc.value

    # -- overlay -----------------------------------------------------------------

    def form_overlay(self, settle: float = 10.0) -> Dict[str, List[str]]:
        """Run a super-peer election synchronously; returns the groups.

        ``settle`` gives the super-peers' detached member-assignment
        fan-out time to land before the group map is read back.
        """
        coordinator = self.rdm(self.community_site)
        membership = list(self.stacks)
        self.run_process(coordinator.overlay.run_election(membership))
        self.sim.run(until=self.sim.now + settle)
        groups: Dict[str, List[str]] = {}
        for name, stack in self.stacks.items():
            assert stack.rdm is not None
            view = stack.rdm.overlay.view
            if view.super_peer:  # unassigned (e.g. offline) sites are skipped
                groups.setdefault(view.super_peer, []).append(name)
        return groups

    def super_peers(self) -> List[str]:
        return sorted(
            name
            for name, stack in self.stacks.items()
            if stack.rdm is not None and stack.rdm.overlay.is_super_peer
        )

    # -- content publication --------------------------------------------------------

    def publish_archive(self, url: str, size: int, md5sum: str = "") -> None:
        """Host an application archive on the origin pseudo-site."""
        assert self.origin is not None
        path = "/www/" + url.split("/")[-1]
        self.origin.fs.put_file(path, size=size, md5sum=md5sum)
        self.url_catalog.publish(url, ORIGIN, path)

    def publish_deployfile(self, url: str, content: str, md5sum: str = "") -> None:
        """Host a deploy-file (content retrievable by RDM services)."""
        assert self.origin is not None
        path = "/www/" + url.split("/")[-1]
        self.origin.fs.put_file(path, size=len(content), md5sum=md5sum)
        self.url_catalog.publish(url, ORIGIN, path, content=content)


def _site_description(config: VOConfig, index: int) -> SiteDescription:
    """Deterministic heterogeneous site attributes (Austrian-Grid-ish)."""
    name = f"{config.site_prefix}{index:02d}"
    return SiteDescription(
        name=name,
        platform="Intel",
        os="Linux",
        arch="32bit",
        processor_speed_mhz=2200.0 + 200.0 * (index % 5),
        memory_mb=1024.0 * (1 + index % 4),
        processors=config.cores_per_site,
        uptime_hours=500.0 + 137.0 * index,
        extra=dict(config.extra_site_attrs.get(name, {})),
    )


def build_vo(config: Optional[VOConfig] = None, **overrides) -> VirtualOrganization:
    """Assemble a complete VO; see :class:`VOConfig` for the knobs."""
    if config is None:
        config = VOConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a VOConfig or keyword overrides, not both")
    if config.n_sites < 1:
        raise ValueError("a VO needs at least one site")

    vo = VirtualOrganization(config)
    provisioning = config.provisioning or ProvisioningConfig()
    names = [f"{config.site_prefix}{i:02d}" for i in range(config.n_sites)]
    vo.community_site = names[0]

    # Topology: star around the community site (national research
    # network hub) + a well-connected origin host for downloads.
    vo.topology.add_site(names[0])
    for name in names[1:]:
        vo.topology.add_link(names[0], name, config.wan_latency, config.wan_bandwidth)
    vo.topology.add_link(names[0], ORIGIN, config.wan_latency * 2, config.wan_bandwidth)

    # Origin pseudo-site: hosts archives, runs only GridFTP.
    origin_desc = SiteDescription(name=ORIGIN, processors=8, memory_mb=8192.0)
    vo.origin = GridSite(vo.network, origin_desc)
    GridFtpService(
        vo.network, ORIGIN, fs=vo.origin.fs,
        setup_cost=config.gridftp_setup, url_catalog=vo.url_catalog,
    )

    # Member sites.
    for index, name in enumerate(names):
        site = GridSite(vo.network, _site_description(config, index))
        stack = SiteStack(site)
        vo.stacks[name] = stack

        stack.index = IndexService(
            vo.network, name,
            community=(name == vo.community_site),
            upstream=None if name == vo.community_site else vo.community_site,
        )
        stack.gridftp = GridFtpService(
            vo.network, name, fs=site.fs,
            setup_cost=config.gridftp_setup, url_catalog=vo.url_catalog,
            replica_transfers=provisioning.replica_transfers,
            transfer_singleflight=provisioning.transfer_singleflight,
        )
        stack.gram = GramService(vo.network, name, submission_overhead=config.gram_overhead)
        stack.atr = ActivityTypeRegistry(
            vo.network, name, cache_enabled=config.cache_enabled,
            storage=config.storage,
        )
        stack.adr = ActivityDeploymentRegistry(
            vo.network, name, atr=stack.atr, cache_enabled=config.cache_enabled,
            storage=config.storage,
        )
        stack.gridarm = ReservationService(vo.network, name)
        stack.rdm = GlareRDMService(
            vo.network, site, stack.atr, stack.adr, stack.gridftp,
            handler=config.handler,
            community_site=vo.community_site,
            group_size=config.group_size,
            resolution=config.resolution,
            provisioning=config.provisioning,
            retry_policy=config.rpc_retry,
            storage=config.storage,
        )
        if config.admission_limit is not None:
            stack.rdm.admission_limit = config.admission_limit
        if config.lifecycle:
            stack.lifecycle = LifecycleController(
                stack.rdm, sweep_interval=config.lifecycle_sweep_interval
            )

    # Bootstrap community membership (initial registrations at t=0),
    # then start the keepalive + monitor machinery.
    community_index = vo.stacks[vo.community_site].index
    assert community_index is not None
    from repro.mds.index import SiteRegistration

    for name in names:
        community_index.site_registrations[name] = SiteRegistration(
            site=name, registered_at=0.0, last_keepalive=0.0,
            ttl=community_index.registration_ttl,
        )
    for name in names:
        stack = vo.stacks[name]
        assert stack.index is not None and stack.rdm is not None
        stack.index.start()
        if config.monitors:
            stack.rdm.start(monitors=True)
        if stack.lifecycle is not None:
            stack.lifecycle.start()

    # Observability: site probes feed repro.stats regardless of the
    # enabled flag; the gauge recorder only runs when enabled.
    from repro.stats import site_counter_probe

    for name in names:
        vo.obs.metrics.register_site_probe(name, site_counter_probe(vo, name))
    if vo.obs.enabled:
        vo.obs.recorder = MetricsRecorder(vo, interval=vo.obs.sample_interval)
        vo.obs.recorder.start()
    if vo.obs.slo is not None:
        vo.obs.slo.start()

    # Desired-state orchestration: one reconciler process on the
    # community site, driving the VO toward the declared specs.  The
    # health plane (when enabled) feeds degraded/down states into
    # placement.  Off by default — no config, no process, no events.
    if config.orchestration is not None and config.orchestration.any_enabled:
        from repro.orchestrate import RdmActuator, Reconciler

        community_rdm = vo.stacks[vo.community_site].rdm
        assert community_rdm is not None
        vo.reconciler = Reconciler(
            community_rdm,
            config.orchestration,
            actuator=RdmActuator(community_rdm),
            health=vo.obs.health,
        )
        vo.reconciler.start()

    # Fault plane: spawn the crash/churn schedules (no-op when disabled).
    vo.faults.start()

    return vo
