"""Grid workflows on top of GLARE.

"A Grid workflow consists of Grid activities ... a high level
abstraction that refers to a single self contained computational task"
(paper §2).  The paper's Fig. 1 workflow — ImageConversion then
Visualization — is composed from *activity types only*; the scheduler
asks its local GLARE service for deployments (Fig. 4, Example 3) and
the enactment engine runs the chosen deployments as GRAM jobs or
service invocations, moving intermediate files with GridFTP.

This package provides that consumer stack: an AGWL-flavoured workflow
model, a GLARE-backed scheduler, and a fault-tolerant enactment engine
(retry with re-mapping, in the spirit of the DEE engine the paper
cites for activity instances).
"""

from repro.workflow.model import ActivityNode, DataItem, Workflow, WorkflowError
from repro.workflow.scheduler import Schedule, ScheduledActivity, Scheduler
from repro.workflow.enactment import EnactmentEngine, EnactmentResult

__all__ = [
    "ActivityNode",
    "DataItem",
    "EnactmentEngine",
    "EnactmentResult",
    "Schedule",
    "ScheduledActivity",
    "Scheduler",
    "Workflow",
    "WorkflowError",
]
