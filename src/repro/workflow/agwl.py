"""AGWL-flavoured XML workflow descriptions.

The paper's workflow environment (ASKALON) specifies workflows in AGWL,
"an Abstract Grid Workflow Language" [19], composing *activity types*
rather than deployments.  This module parses a compact AGWL-like XML
dialect into :class:`~repro.workflow.model.Workflow` objects::

    <agwl name="povray-imaging">
      <Activity id="convert" type="ImageConversion" demand="8">
        <Input name="scene.pov" size="200000"/>
        <Output name="image.png" size="4000000"/>
      </Activity>
      <Activity id="visualize" type="Visualization" demand="2">
        <Input name="image.png" size="4000000"/>
      </Activity>
      <Dependency from="convert" to="visualize"/>
    </agwl>

and serializes workflows back to it, so workflow definitions can live
in files next to deploy-files.
"""

from __future__ import annotations

from repro.workflow.model import ActivityNode, DataItem, Workflow, WorkflowError
from repro.wsrf.xmldoc import Element, parse_xml


def parse_agwl(source) -> Workflow:
    """Parse an AGWL document (string or Element) into a Workflow.

    Besides plain ``<Activity>`` elements, the dialect supports AGWL's
    data-parallel construct::

        <ParallelFor id="tile" count="4" type="ImageConversion" demand="6">
          <Output name="tile.png" size="1000000"/>
        </ParallelFor>

    which expands into ``tile_0 .. tile_3`` (per-iteration output names
    get an ``_<i>`` suffix).  ``<Dependency from=... to=...>`` edges
    referencing the ParallelFor id fan out/in over every iteration.
    """
    root = parse_xml(source) if isinstance(source, str) else source
    if root.tag != "agwl":
        raise WorkflowError(f"AGWL root must be <agwl>, got <{root.tag}>")
    workflow = Workflow(root.get("name", "unnamed"))
    #: ParallelFor id -> list of expanded node ids
    expansions = {}
    for activity_el in root.findall("Activity"):
        workflow.add(_parse_activity(activity_el))
    for loop_el in root.findall("ParallelFor"):
        loop_id = loop_el.get("id", "")
        try:
            count = int(loop_el.get("count", "0"))
        except ValueError as error:
            raise WorkflowError(
                f"ParallelFor {loop_id!r} has a non-numeric count"
            ) from error
        if count < 1:
            raise WorkflowError(f"ParallelFor {loop_id!r} needs count >= 1")
        members = []
        for index in range(count):
            node = _parse_activity(loop_el, node_id=f"{loop_id}_{index}")
            node.inputs = [
                DataItem(_indexed(i.name, index), i.size) for i in node.inputs
            ]
            node.outputs = [
                DataItem(_indexed(o.name, index), o.size) for o in node.outputs
            ]
            workflow.add(node)
            members.append(node.node_id)
        expansions[loop_id] = members
    for dep_el in root.findall("Dependency"):
        sources = expansions.get(dep_el.get("from", ""), [dep_el.get("from", "")])
        targets = expansions.get(dep_el.get("to", ""), [dep_el.get("to", "")])
        for src in sources:
            for dst in targets:
                workflow.connect(src, dst)
    workflow.validate()
    return workflow


def _parse_activity(element: Element, node_id: str = "") -> ActivityNode:
    node_id = node_id or element.get("id", "")
    try:
        demand = float(element.get("demand", "5"))
    except ValueError as error:
        raise WorkflowError(
            f"activity {node_id!r} has a non-numeric demand"
        ) from error
    return ActivityNode(
        node_id=node_id,
        type_name=element.get("type", ""),
        demand=demand,
        inputs=[_data_item(e) for e in element.findall("Input")],
        outputs=[_data_item(e) for e in element.findall("Output")],
    )


def _indexed(name: str, index: int) -> str:
    """``tile.png`` -> ``tile_3.png`` (suffix before the extension)."""
    if "." in name:
        stem, ext = name.rsplit(".", 1)
        return f"{stem}_{index}.{ext}"
    return f"{name}_{index}"


def _data_item(element: Element) -> DataItem:
    try:
        size = int(element.get("size", "1000000"))
    except ValueError as error:
        raise WorkflowError(
            f"data item {element.get('name')!r} has a non-numeric size"
        ) from error
    return DataItem(name=element.get("name", "data"), size=size)


def to_agwl(workflow: Workflow) -> str:
    """Serialize a workflow back to AGWL XML."""
    root = Element("agwl", attrib={"name": workflow.name})
    for node in workflow.nodes.values():
        activity = root.make_child(
            "Activity", id=node.node_id, type=node.type_name,
            demand=f"{node.demand:g}",
        )
        for item in node.inputs:
            activity.make_child("Input", name=item.name, size=str(item.size))
        for item in node.outputs:
            activity.make_child("Output", name=item.name, size=str(item.size))
    for src, dst in workflow.edges:
        root.make_child("Dependency", **{"from": src, "to": dst})
    return root.to_string()
