"""The enactment engine: run a scheduled workflow on the Grid.

Executes activities in dependency order (independent branches run
concurrently), instantiating each node's deployment through the target
site's RDM (GRAM job for executables, direct invocation for services —
paper Example 3), staging intermediate data between sites with GridFTP,
and retrying failed activities with re-mapping, in the fault-tolerant
spirit of the DEE engine the paper builds on [13].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.glare.model import ActivityDeployment
from repro.simkernel.errors import OfflineError
from repro.net.network import RpcTimeout
from repro.vo import VirtualOrganization
from repro.workflow.model import ActivityNode, Workflow, WorkflowError
from repro.workflow.scheduler import Schedule, Scheduler


@dataclass
class ActivityRun:
    """Execution record of one workflow node."""

    node_id: str
    site: str
    deployment: str
    started_at: float
    finished_at: float
    attempts: int
    transfer_time: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class EnactmentResult:
    """Outcome of one workflow execution."""

    workflow: str
    success: bool
    makespan: float
    runs: Dict[str, ActivityRun] = field(default_factory=dict)
    retries: int = 0
    bytes_staged: int = 0
    error: str = ""


class EnactmentEngine:
    """Drives a :class:`Schedule` to completion."""

    def __init__(
        self,
        vo: VirtualOrganization,
        home_site: str,
        max_retries: int = 2,
    ) -> None:
        self.vo = vo
        self.home_site = home_site
        self.max_retries = max_retries

    @property
    def sim(self):
        return self.vo.sim

    def run(self, schedule: Schedule) -> Generator:
        """Sub-generator executing the workflow; yields EnactmentResult."""
        workflow = schedule.workflow
        result = EnactmentResult(workflow=workflow.name, success=False, makespan=0.0)
        started = self.sim.now

        done_events: Dict[str, object] = {
            node_id: self.sim.event(name=f"wf-node-{node_id}")
            for node_id in workflow.nodes
        }
        failure: List[str] = []

        def node_proc(node: ActivityNode) -> Generator:
            # wait for all predecessors
            for pred in workflow.predecessors(node.node_id):
                yield done_events[pred]
            if failure:
                done_events[node.node_id].succeed("skipped")
                return
            try:
                run = yield from self._run_node(schedule, node, result)
                result.runs[node.node_id] = run
                done_events[node.node_id].succeed("ok")
            except Exception as error:  # noqa: BLE001 - recorded, not raised
                failure.append(f"{node.node_id}: {error}")
                done_events[node.node_id].succeed("failed")

        procs = [
            self.sim.process(node_proc(node), name=f"wf:{node.node_id}")
            for node in workflow.topological_order()
        ]
        yield self.sim.all_of(procs)

        result.makespan = self.sim.now - started
        result.success = not failure
        result.error = "; ".join(failure)
        return result

    def _run_node(
        self, schedule: Schedule, node: ActivityNode, result: EnactmentResult
    ) -> Generator:
        """Stage inputs, instantiate, record; retry with re-mapping."""
        mapping = schedule.mappings[node.node_id]
        deployment = mapping.deployment
        attempts = 0
        last_error: Optional[Exception] = None
        while attempts <= self.max_retries:
            attempts += 1
            started = self.sim.now
            try:
                transfer_time = yield from self._stage_inputs(
                    schedule, node, deployment, result
                )
                outcome = yield from self.vo.network.call_with_timeout(
                    self.home_site, deployment.site, "glare-rdm", "instantiate",
                    payload={"key": deployment.key, "demand": node.demand},
                    timeout=max(60.0, node.demand * 5 + 60.0),
                )
                if outcome["exit_code"] != 0:
                    raise WorkflowError(
                        f"activity exited with code {outcome['exit_code']}"
                    )
                self._materialize_outputs(schedule, node, deployment)
                return ActivityRun(
                    node_id=node.node_id,
                    site=deployment.site,
                    deployment=deployment.key,
                    started_at=started,
                    finished_at=self.sim.now,
                    attempts=attempts,
                    transfer_time=transfer_time,
                )
            except (OfflineError, RpcTimeout, WorkflowError) as error:
                last_error = error
                result.retries += 1
                if attempts > self.max_retries:
                    break
                # re-map: ask GLARE again, skipping the failed site
                deployment = yield from self._remap(node, exclude=deployment.site)
                if deployment is None:
                    break
        raise WorkflowError(
            f"node {node.node_id!r} failed after {attempts} attempt(s): {last_error}"
        )

    def _remap(self, node: ActivityNode, exclude: str) -> Generator:
        """Ask GLARE for an alternative deployment, avoiding ``exclude``."""
        try:
            wires = yield from self.vo.client_call(
                self.home_site, "get_deployments",
                payload={"type": node.type_name, "auto_deploy": True,
                         "exclude_sites": [exclude]},
            )
        except Exception:
            return None
        candidates = [
            ActivityDeployment.from_xml(w["xml"])
            for w in wires
        ]
        candidates = [c for c in candidates if c.site != exclude]
        if not candidates:
            return None
        return sorted(candidates, key=lambda c: (c.site, c.name))[0]

    def _stage_inputs(
        self,
        schedule: Schedule,
        node: ActivityNode,
        deployment: ActivityDeployment,
        result: EnactmentResult,
    ) -> Generator:
        """Move predecessor outputs to the activity's site via GridFTP."""
        start = self.sim.now
        target_ftp = self.vo.stack(deployment.site).gridftp
        assert target_ftp is not None
        for pred_id in schedule.workflow.predecessors(node.node_id):
            pred_site = schedule.site_of(pred_id)
            if pred_site == deployment.site:
                continue
            pred_node = schedule.workflow.nodes[pred_id]
            for item in pred_node.outputs:
                src_path = f"/scratch/wf/{schedule.workflow.name}/{item.name}"
                dst_path = f"/scratch/wf/{schedule.workflow.name}/{item.name}"
                src_fs = self.vo.stack(pred_site).site.fs
                if not src_fs.exists(src_path):
                    continue
                yield from target_ftp.fetch(pred_site, src_path, dst_path)
                result.bytes_staged += item.size
        return self.sim.now - start

    def _materialize_outputs(
        self, schedule: Schedule, node: ActivityNode, deployment: ActivityDeployment
    ) -> None:
        """Create the node's output files in the workflow scratch dir."""
        fs = self.vo.stack(deployment.site).site.fs
        for item in node.outputs:
            fs.put_file(
                f"/scratch/wf/{schedule.workflow.name}/{item.name}",
                size=item.size,
                created_at=self.sim.now,
            )


def run_workflow(
    vo: VirtualOrganization, workflow: Workflow, home_site: str
) -> Generator:
    """Convenience: map and enact in one call (sub-generator)."""
    scheduler = Scheduler(vo, home_site)
    schedule = yield from scheduler.map_workflow(workflow)
    engine = EnactmentEngine(vo, home_site)
    result = yield from engine.run(schedule)
    return result, schedule
