"""Workflow model: activities, data flow, DAG validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


class WorkflowError(Exception):
    """Malformed workflows: unknown nodes, cycles, dangling data."""


@dataclass(frozen=True)
class DataItem:
    """A file flowing between activities."""

    name: str
    size: int = 1_000_000

    def __post_init__(self) -> None:
        if self.size < 0:
            raise WorkflowError(f"data item {self.name!r} has negative size")


@dataclass
class ActivityNode:
    """One workflow activity, referencing a GLARE activity *type*.

    The composer "only uses activity types while composing a Grid
    workflow application" — never deployments (paper §2.2).
    """

    node_id: str
    type_name: str
    demand: float = 5.0  # estimated CPU-seconds of the activity instance
    inputs: List[DataItem] = field(default_factory=list)
    outputs: List[DataItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.node_id or not self.type_name:
            raise WorkflowError("activity node needs an id and a type name")
        if self.demand < 0:
            raise WorkflowError(f"node {self.node_id!r} has negative demand")


class Workflow:
    """A DAG of activity nodes with data-flow edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: Dict[str, ActivityNode] = {}
        self.edges: List[Tuple[str, str]] = []

    def add(self, node: ActivityNode) -> ActivityNode:
        if node.node_id in self.nodes:
            raise WorkflowError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        return node

    def connect(self, src: str, dst: str) -> None:
        """Add a control/data dependency: ``dst`` runs after ``src``."""
        for node_id in (src, dst):
            if node_id not in self.nodes:
                raise WorkflowError(f"unknown node {node_id!r}")
        if src == dst:
            raise WorkflowError("a node cannot depend on itself")
        if (src, dst) not in self.edges:
            self.edges.append((src, dst))

    def predecessors(self, node_id: str) -> List[str]:
        return [s for s, d in self.edges if d == node_id]

    def successors(self, node_id: str) -> List[str]:
        return [d for s, d in self.edges if s == node_id]

    def validate(self) -> None:
        """Raise :class:`WorkflowError` on cycles."""
        self.topological_order()

    def topological_order(self) -> List[ActivityNode]:
        """Nodes in execution order (Kahn), raising on cycles."""
        indegree = {node_id: 0 for node_id in self.nodes}
        for _, dst in self.edges:
            indegree[dst] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        ordered: List[str] = []
        while ready:
            current = ready.pop(0)
            ordered.append(current)
            for successor in self.successors(current):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(ordered) != len(self.nodes):
            raise WorkflowError(f"workflow {self.name!r} contains a cycle")
        return [self.nodes[n] for n in ordered]

    def activity_types(self) -> Set[str]:
        """The distinct activity types this workflow needs."""
        return {node.type_name for node in self.nodes.values()}

    @classmethod
    def povray_example(cls) -> "Workflow":
        """The paper's Fig. 1 workflow: conversion then visualization."""
        wf = cls("povray-imaging")
        wf.add(ActivityNode(
            "convert", "ImageConversion", demand=8.0,
            inputs=[DataItem("scene.pov", 200_000)],
            outputs=[DataItem("image.png", 4_000_000)],
        ))
        wf.add(ActivityNode(
            "visualize", "Visualization", demand=2.0,
            inputs=[DataItem("image.png", 4_000_000)],
        ))
        wf.connect("convert", "visualize")
        return wf
