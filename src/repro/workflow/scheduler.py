"""The GLARE-backed workflow scheduler.

"The workflow description can then be submitted to the scheduler.  The
scheduler interacts with a local GLARE service and requests for an
activity deployment capable to provide the requested service." (paper
§2.2, Fig. 4)

The scheduler runs at one *home site*, talks only to that site's RDM
(Local Access, §3.2), and maps every workflow node to a concrete
deployment.  Deployment selection prefers (1) service deployments or
executables equally, (2) sites already chosen for predecessor nodes
(to avoid transfers), (3) deterministic tie-breaking by site name.
On-demand installation is GLARE's job — a type with no deployment
anywhere simply costs the scheduler one slower ``get_deployments``
call (the "Total overhead for meta-scheduler" row of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List

from repro.glare.model import ActivityDeployment
from repro.vo import VirtualOrganization
from repro.workflow.model import ActivityNode, Workflow, WorkflowError


@dataclass
class ScheduledActivity:
    """One node mapped to a concrete deployment."""

    node: ActivityNode
    deployment: ActivityDeployment
    mapped_at: float = 0.0


@dataclass
class Schedule:
    """A complete mapping of a workflow."""

    workflow: Workflow
    home_site: str
    mappings: Dict[str, ScheduledActivity] = field(default_factory=dict)
    mapping_time: float = 0.0

    def site_of(self, node_id: str) -> str:
        return self.mappings[node_id].deployment.site


class Scheduler:
    """Maps workflows to deployments through one local GLARE service.

    ``policy`` selects how candidates are ranked:

    * ``"colocate"`` (default) — prefer sites already chosen for other
      nodes of this workflow, minimising data staging;
    * ``"load-aware"`` — GridARM resource brokerage: live site load per
      core, discounted by the type's platform benchmarks, with a
      penalty for recent failures.
    """

    def __init__(self, vo: VirtualOrganization, home_site: str,
                 policy: str = "colocate") -> None:
        if home_site not in vo.stacks:
            raise WorkflowError(f"unknown home site {home_site!r}")
        if policy not in ("colocate", "load-aware"):
            raise WorkflowError(f"unknown scheduling policy {policy!r}")
        self.vo = vo
        self.home_site = home_site
        self.policy = policy
        if policy == "load-aware":
            from repro.gridarm.broker import ResourceBroker

            self.broker = ResourceBroker(vo, home_site)
        else:
            self.broker = None
        self.lookups = 0

    def map_workflow(self, workflow: Workflow,
                     auto_deploy: bool = True) -> Generator:
        """Sub-generator: resolve every node; yields a :class:`Schedule`."""
        workflow.validate()
        schedule = Schedule(workflow=workflow, home_site=self.home_site)
        started = self.vo.sim.now
        chosen_sites: Dict[str, str] = {}
        deployment_cache: Dict[str, List[ActivityDeployment]] = {}

        for node in workflow.topological_order():
            candidates = deployment_cache.get(node.type_name)
            if candidates is None:
                wires = yield from self.vo.client_call(
                    self.home_site, "get_deployments",
                    payload={"type": node.type_name, "auto_deploy": auto_deploy},
                )
                self.lookups += 1
                candidates = [ActivityDeployment.from_xml(w["xml"]) for w in wires]
                deployment_cache[node.type_name] = candidates
            if not candidates:
                raise WorkflowError(
                    f"no deployment for type {node.type_name!r} "
                    f"(node {node.node_id!r})"
                )
            if self.broker is not None:
                activity_type = self.vo.stack(self.home_site).atr.find_type(
                    node.type_name
                )
                ranked = yield from self.broker.rank(candidates, activity_type)
                if not ranked:
                    raise WorkflowError(
                        f"all candidate sites for {node.type_name!r} are down"
                    )
                deployment = ranked[0].deployment
            else:
                deployment = self._select(node, candidates, chosen_sites)
            chosen_sites[node.node_id] = deployment.site
            schedule.mappings[node.node_id] = ScheduledActivity(
                node=node, deployment=deployment, mapped_at=self.vo.sim.now
            )
        schedule.mapping_time = self.vo.sim.now - started
        return schedule

    def _select(
        self,
        node: ActivityNode,
        candidates: List[ActivityDeployment],
        chosen_sites: Dict[str, str],
    ) -> ActivityDeployment:
        """Prefer co-location with predecessors, then stable order."""
        preferred = {
            chosen_sites[p]
            for p in self._predecessor_ids(node, chosen_sites)
            if p in chosen_sites
        }
        usable = [c for c in candidates if c.usable] or candidates

        def sort_key(deployment: ActivityDeployment):
            return (deployment.site not in preferred, deployment.site, deployment.name)

        return sorted(usable, key=sort_key)[0]

    def _predecessor_ids(self, node: ActivityNode, chosen: Dict[str, str]) -> List[str]:
        # the workflow isn't reachable from here; co-location preference
        # uses whatever has been chosen so far
        return list(chosen)
