"""WSRF substrate: the Web-Services Resource Framework, rebuilt.

GLARE was prototyped on Globus Toolkit 4, "a reference implementation
of the new Web-Services Resource Framework".  The evaluation leans on
four WSRF mechanisms, all reproduced here:

* **WS-Resources** (:mod:`repro.wsrf.resource`) — stateful, keyed
  resources with XML resource-property documents; every activity type
  and deployment in the registries is one.
* **Endpoint References** (:mod:`repro.wsrf.resource`) — address + key
  + reference properties, including the ``LastUpdateTime`` attribute the
  cache refresher keys on (paper Fig. 6).
* **Resource lifetime** (:mod:`repro.wsrf.lifetime`) — scheduled
  termination times with renewal; expired resources are swept.
* **Service groups** (:mod:`repro.wsrf.servicegroup`) — periodically
  refreshed aggregations of member resources; both the WS-MDS index and
  the GLARE registries aggregate through this mechanism, which is why
  the paper calls their comparison "logical".
* **Notifications** (:mod:`repro.wsrf.notification`) — topic-based
  publish/subscribe with remote sink delivery (paper Fig. 13 load
  experiment).

The XML infoset (:mod:`repro.wsrf.xmldoc`) and the XPath-subset query
engine (:mod:`repro.wsrf.xpath`) are implemented from scratch; the
XPath evaluator reports node-visit counts, which the WS-MDS baseline
uses as its query cost model.
"""

from repro.wsrf.xmldoc import Element, XmlParseError, parse_xml
from repro.wsrf.xpath import XPathError, XPathQuery, xpath_find
from repro.wsrf.resource import EndpointReference, ResourceHome, WSResource
from repro.wsrf.lifetime import LifetimeManager
from repro.wsrf.servicegroup import ServiceGroup, ServiceGroupEntry
from repro.wsrf.notification import NotificationBroker, NotificationSink, Subscription

__all__ = [
    "Element",
    "EndpointReference",
    "LifetimeManager",
    "NotificationBroker",
    "NotificationSink",
    "ResourceHome",
    "ServiceGroup",
    "ServiceGroupEntry",
    "Subscription",
    "WSResource",
    "XPathError",
    "XPathQuery",
    "XmlParseError",
    "parse_xml",
    "xpath_find",
]
