"""Scheduled resource termination (WS-ResourceLifetime).

"As both activity types and deployments are represented in the form of
WS-Resources, they can be expired, refreshed or removed permanently"
(paper §3.3).  The :class:`LifetimeManager` runs a periodic sweep over
one or more resource homes, destroys expired resources, and invokes
registered expiry listeners — the GLARE registries hook these to
cascade type expiry onto deployments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, List, Optional, Tuple

from repro.simkernel.errors import Interrupt
from repro.wsrf.resource import ResourceHome, WSResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel import Simulator

ExpiryListener = Callable[[WSResource], None]


class LifetimeManager:
    """Periodic expiry sweeper over a set of resource homes."""

    def __init__(self, sim: "Simulator", interval: float = 5.0) -> None:
        if interval <= 0:
            raise ValueError("sweep interval must be positive")
        self.sim = sim
        self.interval = interval
        self._homes: List[Tuple[ResourceHome, List[ExpiryListener]]] = []
        self._proc = None
        #: the sweep timeout currently on the agenda (cancelled by stop)
        self._pending = None
        self.expired_total = 0

    def watch(self, home: ResourceHome, listener: Optional[ExpiryListener] = None) -> None:
        """Add ``home`` to the sweep; optionally attach an expiry listener."""
        for existing, listeners in self._homes:
            if existing is home:
                if listener is not None:
                    listeners.append(listener)
                return
        self._homes.append((home, [listener] if listener else []))

    def add_listener(self, home: ResourceHome, listener: ExpiryListener) -> None:
        """Attach an expiry listener to an already-watched home."""
        self.watch(home, listener)

    def start(self) -> None:
        """Launch the periodic sweeping process."""
        if self._proc is not None:
            raise RuntimeError("lifetime manager already started")
        self._proc = self.sim.process(self._sweep_loop(), name="wsrf-lifetime")

    def stop(self) -> None:
        """Stop sweeping; idempotent, leaves no standing agenda entry.

        Interrupting the loop alone is not enough: the pending
        ``timeout(interval)`` the loop waits on would stay on the
        agenda until it lapses, so a drained VO would still hold one
        scheduled event per stopped sweeper.  The pending timeout is
        therefore cancelled outright.
        """
        proc, self._proc = self._proc, None
        if proc is not None and proc.is_alive:
            proc.interrupt("stop")
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None

    def sweep_now(self) -> List[WSResource]:
        """Immediate synchronous sweep (used by tests and shutdown paths)."""
        expired_all: List[WSResource] = []
        for home, listeners in self._homes:
            expired = home.sweep_expired(self.sim.now)
            expired_all.extend(expired)
            for resource in expired:
                for listener in listeners:
                    listener(resource)
        self.expired_total += len(expired_all)
        return expired_all

    def _sweep_loop(self) -> Generator:
        try:
            while True:
                self._pending = self.sim.timeout(self.interval)
                yield self._pending
                self._pending = None
                self.sweep_now()
        except Interrupt:
            return
        finally:
            self._pending = None
