"""Topic-based WS-Notification: subscriptions, sinks, delivery load.

"WS-Resource ... provides mechanisms including service lifecycle
management, event registration and notification" (paper §3.1).  The
Fig. 13 experiment drives the Activity Type Registry with up to 210
*notification sinks* at rates down to one notification per second and
plots the resulting 1-minute load average on the registry host.

The :class:`NotificationBroker` lives on the publisher's node.  Every
published notification costs marshalling CPU on the publisher *per
sink* and one network delivery per sink — which is exactly why the
load average climbs linearly with sink count and notification rate in
the reproduction, matching the paper's observation that "load average
is proportional to the notification rate".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.net.message import Message
from repro.net.service import Service
from repro.simkernel.errors import OfflineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network

_SUBSCRIPTION_IDS = itertools.count(1)


@dataclass
class Subscription:
    """One sink's registration on a topic.

    ``expires_at`` is an absolute simulation time (None = unbounded):
    WS-Notification subscriptions are WS-Resources with scheduled
    termination, so untended sinks stop costing the publisher.
    """

    topic: str
    sink_site: str
    sink_service: str
    subscription_id: int
    active: bool = True
    expires_at: Optional[float] = None

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class NotificationSink(Service):
    """A remote listener that receives and counts notifications."""

    SERVICE_NAME = "notification-sink"

    def __init__(self, network: "Network", node_name: str, name: Optional[str] = None,
                 process_demand: float = 0.0005) -> None:
        super().__init__(network, node_name, name=name)
        self.process_demand = process_demand
        self.received: List[Any] = []

    def op_notify(self, message: Message) -> Generator:
        if self.process_demand > 0:
            yield from self.compute(self.process_demand)
        self.received.append(message.payload)
        return len(self.received)


class NotificationBroker:
    """Publisher-side subscription table and delivery engine.

    Parameters
    ----------
    publish_demand:
        CPU-seconds burned on the publisher host per delivered
        notification (serialization + connection handling); this is the
        term that drives the Fig. 13 load-average curve.
    """

    def __init__(
        self,
        network: "Network",
        node_name: str,
        publish_demand: float = 0.004,
    ) -> None:
        self.network = network
        self.node_name = node_name
        self.publish_demand = publish_demand
        self._topics: Dict[str, List[Subscription]] = {}
        self.published = 0
        self.delivered = 0
        self.failed_deliveries = 0

    @property
    def sim(self):
        return self.network.sim

    def subscribe(self, topic: str, sink_site: str, sink_service: str,
                  ttl: Optional[float] = None) -> Subscription:
        """Register a sink on ``topic``; returns the subscription handle.

        ``ttl`` bounds the subscription's lifetime in seconds; expired
        subscriptions are dropped lazily at publish time.
        """
        sub = Subscription(
            topic=topic,
            sink_site=sink_site,
            sink_service=sink_service,
            subscription_id=next(_SUBSCRIPTION_IDS),
            expires_at=None if ttl is None else self.sim.now + ttl,
        )
        self._topics.setdefault(topic, []).append(sub)
        return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        """Deactivate and drop a subscription."""
        subscription.active = False
        subs = self._topics.get(subscription.topic, [])
        if subscription in subs:
            subs.remove(subscription)

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        """Active subscriptions on one topic (or on all topics)."""
        if topic is not None:
            return len(self._topics.get(topic, []))
        return sum(len(v) for v in self._topics.values())

    def publish(self, topic: str, payload: Any) -> int:
        """Fan a notification out to every sink on ``topic``.

        Deliveries run as detached processes so the publisher never
        blocks; each delivery charges ``publish_demand`` to the
        publisher host before the network send.  Returns the number of
        deliveries started.
        """
        now = self.sim.now
        subs = self._topics.get(topic, [])
        expired = [s for s in subs if s.expired(now)]
        for sub in expired:
            self.unsubscribe(sub)
        subs = list(self._topics.get(topic, []))
        self.published += 1
        for sub in subs:
            self.sim.process(
                self._deliver(sub, payload), name=f"notify:{topic}->{sub.sink_site}"
            )
        return len(subs)

    def _deliver(self, sub: Subscription, payload: Any) -> Generator:
        node = self.network.node(self.node_name)
        try:
            if self.publish_demand > 0:
                yield from node.cpu.execute(self.publish_demand)
            if not sub.active:
                return
            yield from self.network.call(
                self.node_name, sub.sink_site, sub.sink_service, "notify", payload=payload
            )
            self.delivered += 1
        except OfflineError:
            self.failed_deliveries += 1
            self.unsubscribe(sub)
        except Exception:
            self.failed_deliveries += 1
