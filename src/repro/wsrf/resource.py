"""WS-Resources, endpoint references, and the keyed resource home.

"Each occurrence of an activity type and deployment in a registry
service is represented as a WS-Resource" (paper §3.1).  A WS-Resource
couples a key with an XML resource-property document and a lifetime.
The :class:`EndpointReference` mirrors paper Fig. 6: a service address,
a resource key, and reference properties including ``LastUpdateTime``
(LUT) — the attribute the GLARE cache refresher compares to detect
stale cached resources.

The :class:`ResourceHome` stores resources in a **hash table keyed by
name**, which is precisely the mechanism the paper credits for the
registry outperforming the XPath-scanning WS-MDS index ("the registry
services use hash tables to access named resources ... significantly
improves the performance").  Storage is pluggable: the home owns the
registry semantics (destroyed-purge on read, expiry sweeps) and
delegates raw key/value mechanics to a
:class:`repro.glare.storage.RegistryBackend` — flat dict by default,
consistent-hash sharded when a ``StorageConfig`` selects it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.wsrf.xmldoc import Element

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.glare.storage import RegistryBackend

_RESOURCE_SERIAL = itertools.count(1)


@dataclass
class EndpointReference:
    """A WS-Addressing endpoint reference (paper Fig. 6).

    ``address`` is the service URI (we use ``site/service``), ``key``
    identifies the WS-Resource within the service, and
    ``last_update_time`` is the LUT reference property used by cache
    revalidation.
    """

    address: str
    service: str
    key: str
    last_update_time: float = 0.0
    reference_parameters: Dict[str, str] = field(default_factory=dict)

    @property
    def site(self) -> str:
        """The Grid site component of the address."""
        return self.address.split("/", 1)[0]

    def touched(self, now: float) -> "EndpointReference":
        """Copy of this EPR with a fresh LastUpdateTime."""
        return EndpointReference(
            address=self.address,
            service=self.service,
            key=self.key,
            last_update_time=now,
            reference_parameters=dict(self.reference_parameters),
        )

    def to_xml(self) -> Element:
        """Serialize as in paper Fig. 6."""
        epr = Element("EndpointReference")
        epr.make_child("Address", text=f"https://{self.address}/wsrf/services/{self.service}")
        ref = epr.make_child("ReferenceProperties")
        ref.make_child("ResourceKey", text=self.key)
        ref.make_child("LastUpdateTime", text=f"{self.last_update_time:.6f}")
        for name, value in self.reference_parameters.items():
            ref.make_child(name, text=value)
        return epr

    def same_resource(self, other: "EndpointReference") -> bool:
        """True when both EPRs address the same WS-Resource.

        Address and key "do not change during the lifecycle of a
        deployed activity" (paper §3.2); LUT is excluded on purpose.
        """
        return (
            self.address == other.address
            and self.service == other.service
            and self.key == other.key
        )


class WSResource:
    """A stateful, keyed resource with an XML property document."""

    def __init__(
        self,
        key: str,
        properties: Element,
        owner_epr: EndpointReference,
        created_at: float = 0.0,
    ) -> None:
        self.key = key
        self.properties = properties
        self.epr = owner_epr
        self.created_at = created_at
        self.serial = next(_RESOURCE_SERIAL)
        #: None = infinite lifetime; otherwise absolute termination time
        self.termination_time: Optional[float] = None
        self.destroyed = False

    @property
    def last_update_time(self) -> float:
        """The LUT carried in this resource's EPR."""
        return self.epr.last_update_time

    def touch(self, now: float) -> None:
        """Refresh the LUT (the Deployment Status Monitor does this)."""
        self.epr = self.epr.touched(now)

    def set_termination_time(self, when: Optional[float]) -> None:
        """Schedule (or clear, with None) this resource's expiry."""
        self.termination_time = when

    def is_expired(self, now: float) -> bool:
        """Whether the resource's scheduled lifetime has elapsed."""
        return self.termination_time is not None and now >= self.termination_time

    def destroy(self) -> None:
        """Mark the resource destroyed (homes drop destroyed entries)."""
        self.destroyed = True

    def property_document(self) -> Element:
        """The resource-property document (a live reference)."""
        return self.properties

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WSResource {self.key!r} lut={self.last_update_time:.3f}>"


class ResourceHome:
    """Keyed store of WS-Resources over a pluggable storage backend.

    The home owns the registry semantics — destroyed entries are purged
    on read, expiry sweeps destroy-and-drop — while the raw key/value
    mechanics live in a :class:`~repro.glare.storage.RegistryBackend`.
    The default backend is the flat hash table the paper describes
    (byte-identical to the pre-backend ``dict``, including insertion
    order on scans).
    """

    def __init__(self, backend: Optional["RegistryBackend"] = None) -> None:
        if backend is None:
            # Imported lazily: repro.glare's package init imports the
            # registry module, which imports repro.wsrf — a module-level
            # import here would cycle.  By construction time both
            # packages are fully loaded.
            from repro.glare.storage import DictBackend

            backend = DictBackend()
        self.backend = backend

    def __len__(self) -> int:
        return len(self.backend)

    def __contains__(self, key: str) -> bool:
        return key in self.backend

    def add(self, resource: WSResource) -> WSResource:
        """Insert; replaces any existing resource under the same key."""
        self.backend.put(resource.key, resource)
        return resource

    def lookup(self, key: str) -> Optional[WSResource]:
        """O(1) named lookup — the registry fast path."""
        resource = self.backend.get(key)
        if resource is not None and resource.destroyed:
            self.backend.delete(key)
            return None
        return resource

    def lut(self, key: str) -> Optional[float]:
        """LastUpdateTime of the resource under ``key`` (None if absent)."""
        return self.backend.lut(key)

    def remove(self, key: str) -> Optional[WSResource]:
        """Remove and return the resource under ``key`` (if any)."""
        return self.backend.delete(key)

    def keys(self) -> List[str]:
        """All live resource keys."""
        return [k for k, r in self.backend.scan() if not r.destroyed]

    def resources(self) -> Iterator[WSResource]:
        """Iterate over live resources."""
        for _, resource in self.backend.scan():
            if not resource.destroyed:
                yield resource

    def documents(self) -> List[Element]:
        """Property documents of all live resources (for XPath scans)."""
        return [r.properties for r in self.resources()]

    def sweep_expired(self, now: float) -> List[WSResource]:
        """Destroy and return all resources whose lifetime elapsed."""
        expired = [r for r in self.resources() if r.is_expired(now)]
        for resource in expired:
            resource.destroy()
            self.backend.delete(resource.key)
        return expired
