"""WSRF service groups: periodically refreshed resource aggregation.

"Both registry services provide an aggregation of all locally
registered and cached resources, based on a WSRF service-group
framework, in which aggregated resources are periodically refreshed"
(paper §3.1).  The same framework underlies the GT4 Index Service,
which is why the paper considers the ATR-vs-index comparison fair.

A :class:`ServiceGroup` holds :class:`ServiceGroupEntry` items — an EPR
plus a snapshot of the member's property document.  A refresh process
re-pulls content from registered *content providers* (callables, so the
group works both for purely local aggregation and for remote pulls
implemented by the owner service).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional

from repro.simkernel.errors import Interrupt
from repro.wsrf.resource import EndpointReference
from repro.wsrf.xmldoc import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simkernel import Simulator

#: returns the member's current property document, or None when gone
ContentProvider = Callable[[], Optional[Element]]


class ServiceGroupEntry:
    """One aggregated member: EPR + content snapshot."""

    def __init__(
        self,
        epr: EndpointReference,
        content: Element,
        provider: Optional[ContentProvider] = None,
    ) -> None:
        self.epr = epr
        self.content = content
        self.provider = provider
        self.refreshed_at = 0.0
        self.stale_misses = 0

    def refresh(self, now: float) -> bool:
        """Re-pull content; returns False when the member disappeared."""
        if self.provider is None:
            self.refreshed_at = now
            return True
        fresh = self.provider()
        if fresh is None:
            self.stale_misses += 1
            return False
        self.content = fresh
        self.refreshed_at = now
        return True


class ServiceGroup:
    """An aggregation of member resources with periodic refresh."""

    def __init__(
        self,
        sim: "Simulator",
        name: str = "service-group",
        refresh_interval: float = 30.0,
        max_stale_misses: int = 2,
    ) -> None:
        if refresh_interval <= 0:
            raise ValueError("refresh interval must be positive")
        self.sim = sim
        self.name = name
        self.refresh_interval = refresh_interval
        self.max_stale_misses = max_stale_misses
        self._entries: Dict[str, ServiceGroupEntry] = {}
        #: memoized :meth:`documents` list; dropped whenever membership
        #: or any entry's content snapshot can change
        self._documents_cache: Optional[List[Element]] = None
        self._proc = None
        self.refreshes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entry_key(self, epr: EndpointReference) -> str:
        """Stable identity of an entry (address+service+key)."""
        return f"{epr.address}/{epr.service}#{epr.key}"

    def add(
        self,
        epr: EndpointReference,
        content: Element,
        provider: Optional[ContentProvider] = None,
    ) -> ServiceGroupEntry:
        """Register (or replace) an aggregated member."""
        entry = ServiceGroupEntry(epr, content, provider)
        entry.refreshed_at = self.sim.now
        self._entries[self.entry_key(epr)] = entry
        self._documents_cache = None
        return entry

    def remove(self, epr: EndpointReference) -> bool:
        """Drop an aggregated member; True when it existed."""
        removed = self._entries.pop(self.entry_key(epr), None) is not None
        if removed:
            self._documents_cache = None
        return removed

    def entries(self) -> List[ServiceGroupEntry]:
        """All current entries."""
        return list(self._entries.values())

    def documents(self) -> List[Element]:
        """Content snapshots of all entries (the XPath query surface).

        The list is memoized between membership/refresh changes — every
        query walks it, and rebuilding it per query was pure overhead.
        Callers must not mutate the returned list.
        """
        docs = self._documents_cache
        if docs is None:
            docs = self._documents_cache = [e.content for e in self._entries.values()]
        return docs

    def find_by_key(self, key: str) -> Optional[ServiceGroupEntry]:
        """First entry whose EPR resource key equals ``key``."""
        for entry in self._entries.values():
            if entry.epr.key == key:
                return entry
        return None

    def refresh_all(self) -> int:
        """Refresh every entry, dropping repeatedly-stale ones."""
        now = self.sim.now
        dropped = []
        for key, entry in list(self._entries.items()):
            ok = entry.refresh(now)
            if not ok and entry.stale_misses >= self.max_stale_misses:
                dropped.append(key)
        for key in dropped:
            del self._entries[key]
        self.refreshes += 1
        self._documents_cache = None  # content snapshots may have changed
        return len(dropped)

    def start(self) -> None:
        """Launch the periodic refresh process."""
        if self._proc is not None:
            raise RuntimeError("service group refresh already started")
        self._proc = self.sim.process(self._refresh_loop(), name=f"sg:{self.name}")

    def stop(self) -> None:
        """Interrupt the refresh process."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def _refresh_loop(self) -> Generator:
        try:
            while True:
                yield self.sim.timeout(self.refresh_interval)
                self.refresh_all()
        except Interrupt:
            return
