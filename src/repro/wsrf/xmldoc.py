"""A small XML infoset: elements, a parser, and a serializer.

Resource-property documents, activity-type descriptions and
deploy-files (paper Fig. 9) are all XML.  This module implements the
subset of XML those documents need — elements, attributes, character
data, comments, self-closing tags, and an optional XML declaration —
with position-annotated parse errors.  Namespaces are treated as plain
prefixes (GT4 documents use them decoratively for our purposes).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ('"', "&quot;")]


def escape_text(value: str) -> str:
    """Escape character data for serialization."""
    for raw, enc in _ESCAPES:
        value = value.replace(raw, enc)
    return value


def unescape_text(value: str) -> str:
    """Reverse :func:`escape_text` plus ``&apos;``."""
    for raw, enc in reversed(_ESCAPES):
        value = value.replace(enc, raw)
    return value.replace("&apos;", "'")


class XmlParseError(ValueError):
    """Malformed XML, annotated with the offending position."""

    def __init__(self, message: str, pos: int, text: str) -> None:
        line = text.count("\n", 0, pos) + 1
        col = pos - (text.rfind("\n", 0, pos) + 1) + 1
        super().__init__(f"{message} at line {line}, column {col}")
        self.pos = pos
        self.line = line
        self.column = col


class Element:
    """One XML element: tag, attributes, text, children."""

    __slots__ = ("tag", "attrib", "text", "children", "parent")

    def __init__(
        self,
        tag: str,
        attrib: Optional[Dict[str, str]] = None,
        text: str = "",
        children: Optional[List["Element"]] = None,
    ) -> None:
        self.tag = tag
        self.attrib: Dict[str, str] = dict(attrib or {})
        self.text = text
        self.children: List[Element] = []
        self.parent: Optional[Element] = None
        for child in children or ():
            self.append(child)

    # -- construction -----------------------------------------------------

    def append(self, child: "Element") -> "Element":
        """Attach ``child`` (returns it, for chaining)."""
        child.parent = self
        self.children.append(child)
        return child

    def make_child(self, tag: str, text: str = "", **attrib: str) -> "Element":
        """Create, attach and return a new child element."""
        return self.append(Element(tag, attrib={k: str(v) for k, v in attrib.items()}, text=text))

    # -- queries -----------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute value, or ``default``."""
        return self.attrib.get(name, default)

    def find(self, tag: str) -> Optional["Element"]:
        """First direct child with the given tag."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def findall(self, tag: str) -> List["Element"]:
        """All direct children with the given tag (``*`` matches all)."""
        if tag == "*":
            return list(self.children)
        return [c for c in self.children if c.tag == tag]

    def findtext(self, tag: str, default: str = "") -> str:
        """Text of the first matching child, or ``default``."""
        child = self.find(tag)
        return child.text if child is not None else default

    def iter(self) -> Iterator["Element"]:
        """Depth-first (pre-order) iteration over this subtree.

        Implemented with an explicit stack rather than recursive
        generator delegation: this is the hottest loop of the XPath
        engine (every //-query walks whole resource forests) and the
        iterative form avoids O(depth) frame chaining per element.
        """
        stack = [self]
        pop = stack.pop
        while stack:
            node = pop()
            yield node
            children = node.children
            if children:
                stack.extend(reversed(children))

    def preorder(self) -> List["Element"]:
        """This subtree as a pre-order list (same order as :meth:`iter`).

        The XPath engine consumes whole subtrees as lists; building the
        list directly skips the per-element generator resume of
        :meth:`iter`, which dominated query-heavy profiles.
        """
        out: List["Element"] = []
        append = out.append
        stack = [self]
        pop = stack.pop
        extend = stack.extend
        while stack:
            node = pop()
            append(node)
            children = node.children
            if children:
                extend(reversed(children))
        return out

    def walk_matching(self, tag: Optional[str], out: List["Element"]) -> int:
        """Append pre-order descendants-or-self whose tag is ``tag``.

        ``tag=None`` matches every element.  Returns the number of
        nodes visited (= subtree size) — the XPath engine's node-test
        visit count.  Fusing the walk with the tag test avoids
        materializing whole subtrees just to discard non-matches,
        which is the hot path of every ``//Tag[...]`` query.
        """
        visited = 0
        append = out.append
        stack = [self]
        pop = stack.pop
        extend = stack.extend
        while stack:
            node = pop()
            visited += 1
            if tag is None or node.tag == tag:
                append(node)
            children = node.children
            if children:
                extend(reversed(children))
        return visited

    def count_nodes(self) -> int:
        """Number of elements in this subtree."""
        count = 1
        stack = [self]
        pop = stack.pop
        extend = stack.extend
        while stack:
            children = pop().children
            if children:
                count += len(children)
                extend(children)
        return count

    def deep_copy(self) -> "Element":
        """A detached structural copy of this subtree."""
        clone = Element(self.tag, attrib=dict(self.attrib), text=self.text)
        for child in self.children:
            clone.append(child.deep_copy())
        return clone

    def equals(self, other: "Element") -> bool:
        """Deep structural equality (tag, attrs, text, children)."""
        if (
            self.tag != other.tag
            or self.attrib != other.attrib
            or self.text.strip() != other.text.strip()
            or len(self.children) != len(other.children)
        ):
            return False
        return all(a.equals(b) for a, b in zip(self.children, other.children))

    # -- serialization -------------------------------------------------------

    def to_string(self, indent: int = 0, step: int = 2) -> str:
        """Pretty-printed XML."""
        pad = " " * indent
        attrs = "".join(f' {k}="{escape_text(v)}"' for k, v in self.attrib.items())
        text = escape_text(self.text.strip()) if self.text.strip() else ""
        if not self.children and not text:
            return f"{pad}<{self.tag}{attrs}/>"
        if not self.children:
            return f"{pad}<{self.tag}{attrs}>{text}</{self.tag}>"
        inner = "\n".join(c.to_string(indent + step, step) for c in self.children)
        head = f"{pad}<{self.tag}{attrs}>"
        if text:
            head += text
        return f"{head}\n{inner}\n{pad}</{self.tag}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag!r} attrs={len(self.attrib)} children={len(self.children)}>"


class _Parser:
    """Recursive-descent parser for the XML subset."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str) -> XmlParseError:
        return XmlParseError(message, self.pos, self.text)

    def skip_ws(self) -> None:
        while self.pos < self.length and self.text[self.pos].isspace():
            self.pos += 1

    def skip_prolog_and_comments(self) -> None:
        while True:
            self.skip_ws()
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            else:
                return

    def parse_name(self) -> str:
        start = self.pos
        while self.pos < self.length and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-.:"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]

    def parse_attributes(self) -> Dict[str, str]:
        attrib: Dict[str, str] = {}
        while True:
            self.skip_ws()
            if self.pos >= self.length or self.text[self.pos] in "/>":
                return attrib
            name = self.parse_name()
            self.skip_ws()
            if self.pos >= self.length or self.text[self.pos] != "=":
                raise self.error(f"attribute {name!r} missing '='")
            self.pos += 1
            self.skip_ws()
            quote = self.text[self.pos] if self.pos < self.length else ""
            if quote not in "\"'":
                raise self.error(f"attribute {name!r} value must be quoted")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.error(f"unterminated value for attribute {name!r}")
            attrib[name] = unescape_text(self.text[self.pos : end])
            self.pos = end + 1

    def parse_element(self) -> Element:
        if self.pos >= self.length or self.text[self.pos] != "<":
            raise self.error("expected '<'")
        self.pos += 1
        tag = self.parse_name()
        attrib = self.parse_attributes()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return Element(tag, attrib=attrib)
        if self.pos >= self.length or self.text[self.pos] != ">":
            raise self.error(f"malformed start tag <{tag}>")
        self.pos += 1

        element = Element(tag, attrib=attrib)
        text_parts: List[str] = []
        while True:
            if self.pos >= self.length:
                raise self.error(f"unexpected end of input inside <{tag}>")
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("</", self.pos):
                self.pos += 2
                closing = self.parse_name()
                if closing != tag:
                    raise self.error(f"mismatched closing tag </{closing}> for <{tag}>")
                self.skip_ws()
                if self.pos >= self.length or self.text[self.pos] != ">":
                    raise self.error(f"malformed closing tag </{closing}>")
                self.pos += 1
                element.text = unescape_text("".join(text_parts)).strip()
                return element
            elif self.text[self.pos] == "<":
                element.append(self.parse_element())
            else:
                next_tag = self.text.find("<", self.pos)
                if next_tag < 0:
                    raise self.error(f"unexpected end of input inside <{tag}>")
                text_parts.append(self.text[self.pos : next_tag])
                self.pos = next_tag


def parse_xml(text: str) -> Element:
    """Parse an XML document and return its root element."""
    parser = _Parser(text)
    parser.skip_prolog_and_comments()
    root = parser.parse_element()
    parser.skip_prolog_and_comments()
    parser.skip_ws()
    if parser.pos != parser.length:
        raise parser.error("trailing content after document element")
    return root
