"""An XPath-subset query engine with node-visit accounting.

The WS-MDS index service answers queries "by using standard XPath-based
querying mechanism" while the GLARE registries short-circuit named
lookups through hash tables — the performance gap in paper Figs. 10/11
comes exactly from this difference.  To reproduce it mechanistically we
execute real XPath evaluations over the aggregated resource documents
and report how many element nodes each evaluation *visited*; the index
service charges CPU time proportional to that count.

Supported grammar (sufficient for GT4-style resource queries)::

    query     := ('/' | '//')? step (('/' | '//') step)*
    step      := nametest predicate* | '@' name
    nametest  := NAME | '*' | 'text()'
    predicate := '[' INTEGER ']'
               | '[' '@' NAME ('=' literal)? ']'
               | '[' NAME ('=' literal)? ']'
               | '[' 'text()' '=' literal ']'
    literal   := "'" chars "'" | '"' chars '"'

Examples::

    //ActivityType[@name='JPOVray']
    /Registry/Entry/Deployment[@kind='executable']/@path
    //Entry[Type='Imaging'][2]
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.wsrf.xmldoc import Element


class XPathError(ValueError):
    """Raised for query syntax the engine does not accept."""


_STEP_RE = re.compile(
    r"""
    (?P<axis>//|/)?                # leading axis separator
    (?P<test>@?[\w.\-:]+(?:\(\))?|\*|@\*)  # name / @name / * / text()
    (?P<preds>(?:\[[^\]]*\])*)     # zero or more [..] predicates
    """,
    re.VERBOSE,
)

_PRED_RE = re.compile(r"\[([^\]]*)\]")


@dataclass(frozen=True)
class Predicate:
    """One ``[...]`` filter on a location step."""

    kind: str  # "position" | "attr" | "child" | "text"
    name: str = ""
    value: Optional[str] = None
    position: int = 0

    def matches(self, element: Element, index: int) -> bool:
        if self.kind == "position":
            return index == self.position
        if self.kind == "attr":
            if self.name == "*":
                return bool(element.attrib)
            actual = element.attrib.get(self.name)
            if actual is None:
                return False
            return self.value is None or actual == self.value
        if self.kind == "text":
            return element.text.strip() == (self.value or "")
        if self.kind == "child":
            for child in element.children:
                if child.tag == self.name:
                    if self.value is None or child.text.strip() == self.value:
                        return True
            return False
        raise XPathError(f"unknown predicate kind {self.kind!r}")  # pragma: no cover


@dataclass(frozen=True)
class Step:
    """One location step: axis + node test + predicates."""

    axis: str  # "child" | "descendant"
    test: str  # tag name, "*", "text()", or "@attr"
    predicates: Tuple[Predicate, ...] = ()

    @property
    def is_attribute(self) -> bool:
        return self.test.startswith("@")

    @property
    def is_text(self) -> bool:
        return self.test == "text()"


def _parse_literal(raw: str) -> str:
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        return raw[1:-1]
    raise XPathError(f"expected a quoted literal, got {raw!r}")


def _parse_predicate(body: str) -> Predicate:
    body = body.strip()
    if not body:
        raise XPathError("empty predicate")
    if body.isdigit():
        return Predicate(kind="position", position=int(body))
    if "=" in body:
        left, right = body.split("=", 1)
        left = left.strip()
        value = _parse_literal(right)
        if left.startswith("@"):
            return Predicate(kind="attr", name=left[1:], value=value)
        if left == "text()":
            return Predicate(kind="text", value=value)
        return Predicate(kind="child", name=left, value=value)
    if body.startswith("@"):
        return Predicate(kind="attr", name=body[1:])
    return Predicate(kind="child", name=body)


#: memoized compiled queries — services re-issue the same handful of
#: expressions thousands of times, and parsing showed up in profiles.
#: Bounded: cleared wholesale if an adversarial workload floods it.
_COMPILE_CACHE: dict = {}
_COMPILE_CACHE_LIMIT = 512


@dataclass
class XPathQuery:
    """A compiled query; reusable (and shared!) across documents.

    Instances returned by :meth:`compile` are cached per expression and
    shared between callers; treat them as immutable.
    """

    expression: str
    steps: List[Step] = field(default_factory=list)
    absolute: bool = False

    @classmethod
    def compile(cls, expression: str) -> "XPathQuery":
        cached = _COMPILE_CACHE.get(expression)
        if cached is not None:
            return cached
        query = cls._compile_uncached(expression)
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_LIMIT:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[expression] = query
        return query

    @classmethod
    def _compile_uncached(cls, expression: str) -> "XPathQuery":
        text = expression.strip()
        if not text:
            raise XPathError("empty XPath expression")
        query = cls(expression=expression)
        pos = 0
        first = True
        while pos < len(text):
            match = _STEP_RE.match(text, pos)
            if not match or match.end() == pos:
                raise XPathError(f"cannot parse XPath at ...{text[pos:]!r}")
            axis_token = match.group("axis") or ""
            if first:
                query.absolute = axis_token in ("/", "//")
                axis = "descendant" if axis_token == "//" else "child"
            else:
                if axis_token not in ("/", "//"):
                    raise XPathError(f"missing '/' before step at ...{text[pos:]!r}")
                axis = "descendant" if axis_token == "//" else "child"
            predicates = tuple(
                _parse_predicate(m.group(1)) for m in _PRED_RE.finditer(match.group("preds"))
            )
            step = Step(axis=axis, test=match.group("test"), predicates=predicates)
            if step.is_attribute and predicates:
                raise XPathError("attribute steps cannot carry predicates")
            query.steps.append(step)
            pos = match.end()
            first = False
        if not query.steps:
            raise XPathError("no location steps found")
        for step in query.steps[:-1]:
            if step.is_attribute or step.is_text:
                raise XPathError("@attr / text() allowed only as the final step")
        if query.steps[0].is_attribute or query.steps[0].is_text:
            raise XPathError("query must select elements before @attr / text()")
        return query

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, roots: Union[Element, Iterable[Element]]
    ) -> Tuple[List[Union[Element, str]], int]:
        """Run the query; returns ``(matches, nodes_visited)``.

        ``roots`` is a document root or an iterable of roots (the MDS
        aggregate is a forest of member documents).  Attribute and
        ``text()`` final steps yield strings; otherwise elements.
        """
        if isinstance(roots, Element):
            root_list: Sequence[Element] = [roots]
        else:
            root_list = list(roots)

        visits = 0
        current: List[Element] = []

        first = self.steps[0]
        # Seed the node set from document roots.  Descendant steps fuse
        # the subtree walk with the tag test (see ``walk_matching``);
        # the unfused path is kept for position predicates, whose index
        # is defined within each root's own candidate set.
        if first.axis == "descendant" and not _has_position_predicate(first):
            tag = None if first.test == "*" else first.test
            for root in root_list:
                visits += root.walk_matching(tag, current)
            current, extra = _apply_predicates(current, first.predicates)
            visits += extra
        else:
            for root in root_list:
                if first.axis == "descendant":
                    candidates = root.preorder()
                else:
                    candidates = [root]
                matched, seen = _filter(candidates, first)
                visits += seen
                current.extend(matched)

        for step in self.steps[1:]:
            if step.is_attribute or step.is_text:
                break
            next_set: List[Element] = []
            if step.axis == "descendant" and not _has_position_predicate(step):
                tag = None if step.test == "*" else step.test
                for node in current:
                    for child in node.children:
                        visits += child.walk_matching(tag, next_set)
                next_set, extra = _apply_predicates(next_set, step.predicates)
                visits += extra
            else:
                for node in current:
                    if step.axis == "descendant":
                        candidates = []
                        for child in node.children:
                            candidates.extend(child.preorder())
                    else:
                        candidates = node.children
                    matched, seen = _filter(candidates, step)
                    visits += seen
                    next_set.extend(matched)
            current = next_set

        last = self.steps[-1]
        if last.is_attribute and len(self.steps) > 1:
            name = last.test[1:]
            values: List[Union[Element, str]] = []
            for node in current:
                visits += 1
                if name == "*":
                    values.extend(node.attrib.values())
                elif name in node.attrib:
                    values.append(node.attrib[name])
            return values, visits
        if last.is_text and len(self.steps) > 1:
            texts: List[Union[Element, str]] = []
            for node in current:
                visits += 1
                if node.text.strip():
                    texts.append(node.text.strip())
            return texts, visits
        return list(current), visits


def _has_position_predicate(step: Step) -> bool:
    """True when any predicate indexes by position (needs grouped eval)."""
    for predicate in step.predicates:
        if predicate.kind == "position":
            return True
    return False


def _apply_predicates(
    matched: List[Element], predicates: Sequence[Predicate]
) -> Tuple[List[Element], int]:
    """Run predicates over ``matched``; returns survivors + visit count.

    One visit per element per predicate evaluated against it — the same
    accounting whether the caller filtered per group or over the
    concatenation (position predicates excepted; callers keep those on
    the grouped path).
    """
    visits = 0
    for predicate in predicates:
        visits += len(matched)
        matches = predicate.matches
        matched = [
            element
            for index, element in enumerate(matched, start=1)
            if matches(element, index)
        ]
    return matched, visits


def _filter(candidates: Sequence[Element], step: Step) -> Tuple[List[Element], int]:
    """Apply a step's node test and predicates; count visited nodes.

    Visit accounting (the MDS cost model) is: one visit per candidate
    for the node test, plus one visit per surviving element for each
    predicate evaluated against it.
    """
    if step.is_attribute or step.is_text:
        # Handled by the caller when final; mid-query it's a parse error.
        return list(candidates), len(candidates)
    visits = len(candidates)
    test = step.test
    if test == "*":
        matched = list(candidates)
    else:
        matched = [element for element in candidates if element.tag == test]
    matched, predicate_visits = _apply_predicates(matched, step.predicates)
    return matched, visits + predicate_visits


def xpath_find(
    roots: Union[Element, Iterable[Element]], expression: str
) -> List[Union[Element, str]]:
    """One-shot convenience wrapper: compile, evaluate, drop the count."""
    results, _ = XPathQuery.compile(expression).evaluate(roots)
    return results
