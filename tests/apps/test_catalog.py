"""Unit tests for the application catalog."""

import pytest

from repro.apps import (
    ALL_APPLICATIONS,
    TABLE1_APPLICATIONS,
    base_hierarchy_types,
    get_application,
    publish_applications,
)
from repro.glare.deployfile import parse_deployfile
from repro.glare.model import TypeKind
from repro.vo import build_vo


class TestCatalogIntegrity:
    def test_all_type_documents_parse(self):
        for name, spec in ALL_APPLICATIONS.items():
            at = spec.activity_type()
            assert at.name == name
            assert at.kind == TypeKind.CONCRETE
            assert at.installable, f"{name} must be on-demand installable"

    def test_all_deployfiles_parse_and_validate(self):
        for name, spec in ALL_APPLICATIONS.items():
            recipe = parse_deployfile(spec.deployfile_xml)
            assert recipe.name == name
            ordered = recipe.ordered_steps()
            assert ordered[0].name == "Init"
            assert [s.name for s in ordered[:3]] == ["Init", "Download", "Expand"]

    def test_every_app_produces_something(self):
        """Each recipe declares at least one produced file or the type
        declares pure-service deployment names."""
        for name, spec in ALL_APPLICATIONS.items():
            recipe = parse_deployfile(spec.deployfile_xml)
            produced = [p for s in recipe.steps for p in s.produces]
            at = spec.activity_type()
            service_names = [d for d in at.deployment_names
                             if not any(p.path.endswith(d) for p in produced)]
            assert produced or service_names, name

    def test_deployment_names_match_produced_executables(self):
        """Declared executable names appear in some step's Produces."""
        for name, spec in ALL_APPLICATIONS.items():
            recipe = parse_deployfile(spec.deployfile_xml)
            produced_names = {
                p.path.rsplit("/", 1)[-1]
                for s in recipe.steps for p in s.produces if p.executable
            }
            at = spec.activity_type()
            declared_executables = {
                d for d in at.deployment_names if not d.startswith("WS-")
            }
            assert declared_executables <= produced_names, name

    def test_dependencies_exist_in_catalog(self):
        for name, spec in ALL_APPLICATIONS.items():
            at = spec.activity_type()
            if at.installation:
                for dep in at.installation.dependencies:
                    assert dep in ALL_APPLICATIONS, f"{name} depends on {dep}"

    def test_table1_trio_present(self):
        assert set(TABLE1_APPLICATIONS) <= set(ALL_APPLICATIONS)

    def test_table1_install_demands_ordered_like_paper(self):
        """Wien2k (pre-compiled) installs fastest; Counter slowest."""
        demands = {
            name: parse_deployfile(
                get_application(name).deployfile_xml
            ).total_compute_demand()
            for name in TABLE1_APPLICATIONS
        }
        assert demands["Wien2k"] < demands["Invmod"] < demands["Counter"]

    def test_unknown_application_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_application("Emacs")

    def test_base_hierarchy_is_abstract_and_linked(self):
        types = {t.name: t for t in base_hierarchy_types()}
        assert all(t.kind == TypeKind.ABSTRACT for t in types.values())
        assert "Imaging" in types
        assert types["POVray"].base_types == ["ImageConversion"]
        assert types["ImageConversion"].base_types == ["Imaging"]

    def test_archive_sizes_plausible(self):
        for name, spec in ALL_APPLICATIONS.items():
            assert 1_000_000 <= spec.archive_size <= 100_000_000, name


class TestPublishing:
    def test_publish_hosts_archives_and_deployfiles(self):
        vo = build_vo(n_sites=2, seed=3, monitors=False)
        publish_applications(vo, ["JPOVray", "Java"])
        spec = get_application("JPOVray")
        site, path = vo.url_catalog.resolve(spec.archive_url)
        assert site == "origin"
        assert vo.origin.fs.get_file(path).size == spec.archive_size
        content = vo.url_catalog.content(spec.deployfile_url)
        assert "<Build" in content

    def test_publish_default_is_everything(self):
        vo = build_vo(n_sites=2, seed=3, monitors=False)
        publish_applications(vo)
        for spec in ALL_APPLICATIONS.values():
            assert vo.url_catalog.resolve(spec.archive_url)
