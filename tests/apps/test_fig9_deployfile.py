"""The paper's Fig. 9 POVray deploy-file: parse and execute it."""

import pytest

from repro.apps import fig9_povray_deployfile
from repro.glare.deployfile import parse_deployfile
from repro.glare.handlers import ExpectHandler, JavaCoGHandler
from repro.gram.service import GramService
from repro.gridftp.service import GridFtpService, UrlCatalog
from repro.net.network import Network
from repro.net.topology import Topology
from repro.simkernel import Simulator
from repro.site.description import SiteDescription
from repro.site.gridsite import GridSite

POVRAY_URL = "http://www.povray.org/ftp/pub/povray/povlinux-3.6.tgz"
POVRAY_MD5 = "4a1cbbd1e462278bc16c03a5be9cd05f"


class TestParse:
    def test_structure_matches_figure(self):
        recipe = parse_deployfile(fig9_povray_deployfile())
        assert recipe.name == "Povray"
        assert recipe.default_task == "Deploy"
        names = [s.name for s in recipe.ordered_steps()]
        assert names == ["Init", "Download", "Expand", "Configure",
                         "Build", "Install"]

    def test_env_definitions(self):
        recipe = parse_deployfile(fig9_povray_deployfile())
        env = recipe.collected_env()
        assert env["POVRAY_HOME"] == "$DEPLOYMENT_DIR/povray/"
        assert env["POVRAY_DIR"] == "/tmp/povray/"

    def test_interactive_installation_dialogs(self):
        """'the installation of POVray requires human interaction and
        prompts for license acceptance, user type, and install path'."""
        recipe = parse_deployfile(fig9_povray_deployfile())
        configure = recipe.step("Configure")
        prompts = [d.expect for d in configure.dialogs]
        assert any("license" in p for p in prompts)
        assert any("personal or site" in p for p in prompts)
        assert any("installed" in p for p in prompts)

    def test_download_url_and_md5(self):
        recipe = parse_deployfile(fig9_povray_deployfile())
        urls = recipe.download_urls()
        assert urls[0][0] == POVRAY_URL
        assert urls[0][2] == POVRAY_MD5


def make_world():
    sim = Simulator(seed=9)
    topo = Topology.star("target", ["www", "caller"],
                         latency=0.01, bandwidth=12.5e6)
    net = Network(sim, topo)
    catalog = UrlCatalog()
    www = GridSite(net, SiteDescription(name="www"))
    target = GridSite(net, SiteDescription(name="target"))
    net.add_node("caller")
    GridFtpService(net, "www", fs=www.fs, url_catalog=catalog)
    gridftp = GridFtpService(net, "target", fs=target.fs, url_catalog=catalog)
    GramService(net, "target")
    www.fs.put_file("/ftp/povlinux-3.6.tgz", size=9_200_000, md5sum=POVRAY_MD5)
    catalog.publish(POVRAY_URL, "www", "/ftp/povlinux-3.6.tgz")
    return sim, net, target, gridftp


class TestExecute:
    def test_expect_handler_runs_fig9(self):
        sim, net, target, gridftp = make_world()
        handler = ExpectHandler(target, gridftp)
        proc = sim.process(handler.execute(
            parse_deployfile(fig9_povray_deployfile())))
        sim.run(until=proc)
        report = proc.value
        assert report.success, report.error
        assert target.fs.get_file("/tmp/povray/povray-3.6.1/bin/povray").executable
        # make dominates (110 s of the declared 120 s demand)
        assert report.installation_time > 110.0
        assert report.communication_time > 0.5  # 9.2 MB download

    def test_javacog_cannot_answer_fig9_dialogs_interactively(self):
        """JavaCoG runs it too, but pays extra for non-interactive
        scripting of the prompts (it cannot drive a terminal)."""
        sim, net, target, gridftp = make_world()
        handler = JavaCoGHandler(target, gridftp, net, caller="caller")
        proc = sim.process(handler.execute(
            parse_deployfile(fig9_povray_deployfile())))
        sim.run(until=proc)
        report = proc.value
        assert report.success, report.error
        assert report.handler_overhead >= 9.8
