"""Smoke tests for the experiment harness (small parameterisations).

The full-size sweeps run under ``benchmarks/``; these tests pin the
drivers' data contracts and the headline shape properties at reduced
scale so the main suite stays fast.
"""

import pytest

from repro.experiments.fig10 import run_fig10_point
from repro.experiments.fig12 import run_fig12_point
from repro.experiments.fig13 import run_requester_point, run_sink_point
from repro.experiments.report import format_multi_series, format_series, format_table
from repro.experiments.table1 import Table1Row, format_table1, run_table1
from repro.experiments.workload import (
    ClientStats,
    synthetic_activity_type,
    synthetic_type_doc,
)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 22.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent width

    def test_format_table_rejects_ragged_rows(self):
        from repro.experiments.report import Table

        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_series(self):
        text = format_series("S", [1, 2], [10.0, 20.0], "x", "y")
        assert "10.0" in text and "20.0" in text

    def test_multi_series_aligns_by_x(self):
        text = format_multi_series(
            "M", "x", [1, 2, 3],
            {"a": [10, 30], "b": [1, 2, 3]},
            series_xs={"a": [1, 3]},
        )
        lines = text.splitlines()  # [title, header, separator, rows...]
        row2 = [c.strip() for c in lines[4].split("|")]
        assert row2[0] == "2" and row2[1] == ""  # series a has no x=2


class TestWorkload:
    def test_synthetic_doc_is_realistic_size(self):
        doc = synthetic_type_doc(3)
        assert 10 <= doc.count_nodes() <= 20
        assert doc.get("name") == "type0003"

    def test_synthetic_type_parses(self):
        at = synthetic_activity_type(5)
        assert at.name == "type0005"
        assert at.is_concrete

    def test_client_stats_merge(self):
        a = ClientStats(completed=2, failed=1)
        for value in (0.1, 0.2):
            a.observe(value)
        b = ClientStats(completed=3)
        b.observe(0.3)
        a.merge(b)
        assert a.completed == 5
        assert a.observations == 3
        assert a.mean_response == pytest.approx(0.2)
        assert a.latency.count == 3

    def test_client_stats_mean_bit_identical_to_list_sum(self):
        # The perf fingerprints pin repr() of fig10 means, so the
        # streaming total must reproduce sum(list)/len exactly.
        values = [0.0123456789 * (i % 17 + 1) / 9.7 for i in range(500)]
        stats = ClientStats()
        for value in values:
            stats.observe(value)
        assert stats.mean_response == sum(values) / len(values)

    def test_client_stats_no_unbounded_list(self):
        stats = ClientStats()
        for i in range(10_000):
            stats.observe(0.001 * (i % 50 + 1))
        # fixed-size histogram state only: no attribute grows with N
        assert not hasattr(stats, "response_times")
        assert len(stats.latency.counts) == 35
        assert stats.latency.p99 >= stats.latency.p50 > 0


class TestTable1Driver:
    def test_single_row_contract(self):
        rows = run_table1(applications=("Wien2k",), methods=("expect",))
        assert len(rows) == 1
        row = rows[0]
        assert isinstance(row, Table1Row)
        assert row.total_ms == pytest.approx(sum(row.stage_values()[:-1]))
        assert row.installation_ms > 1000
        text = format_table1(rows)
        assert "Wien2k" in text and "expect" in text


class TestFigureDrivers:
    def test_fig10_point_contract(self):
        point = run_fig10_point("registry", False, clients=2, n_types=10)
        assert point.throughput > 0
        assert point.mean_response_ms > 0
        assert point.service == "registry" and point.security == "http"

    def test_fig10_registry_beats_index(self):
        registry = run_fig10_point("registry", False, clients=8, n_types=60)
        index = run_fig10_point("index", False, clients=8, n_types=60)
        assert registry.throughput > index.throughput

    def test_fig12_cache_beats_no_cache(self):
        cached = run_fig12_point(2, cache=True, clients=3,
                                 total_deployments=12, client_sites=2)
        uncached = run_fig12_point(2, cache=False, clients=3,
                                   total_deployments=12, client_sites=2)
        assert cached.mean_response_ms < uncached.mean_response_ms
        assert cached.completed > 0 and uncached.completed > 0

    def test_fig13_load_grows_with_sinks(self):
        low = run_sink_point(30, 1.0)
        high = run_sink_point(210, 1.0)
        assert high.load_average > low.load_average

    def test_fig13_requesters_bounded(self):
        point = run_requester_point(120)
        assert 0.0 < point.load_average < 6.0


class TestCli:
    def test_cli_quick_table1(self, capsys):
        from repro.cli import main

        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Wien2k" in out
        assert "expect" in out

    def test_cli_rejects_unknown(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])


@pytest.mark.slow
class TestCliQuickSweeps:
    """The --quick CLI paths for every figure actually run end-to-end."""

    def test_cli_quick_fig10(self, capsys):
        from repro.cli import main

        assert main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "registry/http" in out and "index/https" in out

    def test_cli_quick_fig11(self, capsys):
        from repro.cli import main

        assert main(["fig11", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Collapse probe" in out

    def test_cli_quick_fig13(self, capsys):
        from repro.cli import main

        assert main(["fig13", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "sinks@1s" in out
