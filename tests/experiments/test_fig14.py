"""Fig. 14: the scaled resolution path must cut messages without
changing any result set."""

import pytest

from repro import perf
from repro.experiments.fig14 import (
    FULL_WORKLOAD_RESOLUTIONS,
    format_fig14,
    run_fig14_point,
    run_fig14_sampled_point,
    run_revalidation_point,
)


@pytest.fixture(scope="module")
def small_pair():
    base = run_fig14_point(16, optimized=False)
    opt = run_fig14_point(16, optimized=True)
    return base, opt


class TestFig14Point:
    def test_optimizations_preserve_result_sets(self, small_pair):
        base, opt = small_pair
        assert base.resolutions == opt.resolutions > 0
        assert base.result_digest == opt.result_digest

    def test_optimizations_cut_messages(self, small_pair):
        base, opt = small_pair
        assert opt.messages_per_resolution < base.messages_per_resolution
        assert opt.digest_stats["singleflight_joined"] > 0
        assert opt.digest_stats["group_hits"] > 0
        assert opt.digest_stats["negative_hits"] > 0

    def test_tier_attribution_matches_baseline(self, small_pair):
        base, opt = small_pair
        assert base.tiers == opt.tiers

    def test_format_reports_ratio_and_equality(self, small_pair):
        text = format_fig14(list(small_pair))
        assert "results ==" in text
        assert "16" in text

    @pytest.mark.slow
    def test_128_sites_meets_3x_reduction(self):
        """The acceptance bar: >=3x fewer messages at 128 sites."""
        base = run_fig14_point(128, optimized=False)
        opt = run_fig14_point(128, optimized=True)
        assert base.result_digest == opt.result_digest
        ratio = base.messages_per_resolution / opt.messages_per_resolution
        assert ratio >= 3.0


class TestSampledBaseline:
    """The 4,096-site broadcast baseline runs a reduced workload and
    extrapolates (see EXPERIMENTS.md deviations); the bookkeeping must
    stay honest about what was measured vs scaled."""

    def test_sampled_point_extrapolates_exactly(self):
        point = run_fig14_sampled_point(16)
        assert point.sampled
        assert point.resolutions == FULL_WORKLOAD_RESOLUTIONS
        # 18 measured resolutions scale to the 126-resolution workload
        assert point.extrapolation_factor == FULL_WORKLOAD_RESOLUTIONS / 18
        measured = point.workload_messages / point.extrapolation_factor
        # per-resolution cost is direct measurement, never extrapolated
        assert point.messages_per_resolution == pytest.approx(
            measured / 18)

    def test_sampled_estimate_tracks_exact_measurement(self):
        sampled = run_fig14_sampled_point(16)
        exact = run_fig14_point(16, optimized=False)
        ratio = (sampled.messages_per_resolution
                 / exact.messages_per_resolution)
        assert 0.8 <= ratio <= 1.2

    def test_format_marks_sampled_series(self):
        base = run_fig14_sampled_point(16)
        opt = run_fig14_point(16, optimized=True)
        text = format_fig14([base, opt])
        assert "(sampled)" in text
        assert "n/a, sampled" in text
        assert "results ==" not in text


class TestRevalidationPoint:
    def test_batching_cheaper_per_cycle(self):
        point = run_revalidation_point()
        assert point.cached_entries > point.distinct_sources
        assert point.batched_messages < point.per_entry_messages


class TestResolutionHarness:
    def test_fingerprint_is_deterministic(self):
        assert perf.resolution_fingerprint() == perf.resolution_fingerprint()

    def test_baseline_roundtrip_and_drift_detection(self):
        suite = perf.resolution_suite(quick=True)
        assert perf.compare_resolution_baseline(suite, suite) == []
        tampered = {
            "results": {"resolution": {"details": dict(
                suite["results"]["resolution"]["details"],
                optimized_messages_per_resolution=1.0,
            )}},
            "fingerprint": dict(suite["fingerprint"],
                                optimized_result_digest="deadbeef"),
        }
        failures = perf.compare_resolution_baseline(suite, tampered)
        assert any("rose" in f for f in failures)
        assert any("fingerprint drift" in f for f in failures)

    def test_committed_baseline_matches(self):
        """BENCH_resolution.json stays in lockstep with the code."""
        import json
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_resolution.json")
        with open(path) as handle:
            baseline = json.load(handle)
        suite = perf.resolution_suite()
        assert perf.compare_resolution_baseline(suite, baseline) == []
