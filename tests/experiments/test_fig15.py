"""Fig. 15: the parallel/replica rollout must cut simulated wall-clock
without changing what gets installed where."""

import pytest

from repro import perf
from repro.experiments.fig15 import format_fig15, run_fig15_point


@pytest.fixture(scope="module")
def small_pair():
    base = run_fig15_point(8, optimized=False)
    opt = run_fig15_point(8, optimized=True)
    return base, opt


class TestFig15Point:
    def test_optimizations_preserve_deployment_sets(self, small_pair):
        base, opt = small_pair
        assert base.installed == opt.installed == base.n_sites
        assert base.failed == opt.failed == 0
        assert base.result_digest == opt.result_digest

    def test_optimizations_cut_rollout_wallclock(self, small_pair):
        base, opt = small_pair
        assert opt.rollout_elapsed < base.rollout_elapsed

    def test_baseline_never_uses_the_scaled_path(self, small_pair):
        base, _ = small_pair
        assert base.replica_hits == 0
        assert base.url_singleflight_joined == 0
        assert base.probe_cache_hits == 0

    def test_replicas_relieve_the_origin(self, small_pair):
        base, opt = small_pair
        assert opt.origin_bytes_out <= base.origin_bytes_out

    def test_format_reports_ratio_and_equality(self, small_pair):
        text = format_fig15(list(small_pair))
        assert "results ==" in text
        assert "speedup" in text
        assert "parallel+replica" in text

    @pytest.mark.slow
    def test_32_sites_meets_3x_speedup(self):
        """The acceptance bar: >=3x faster rollout at 32 sites."""
        base = run_fig15_point(32, optimized=False)
        opt = run_fig15_point(32, optimized=True)
        assert base.result_digest == opt.result_digest
        assert base.rollout_elapsed / opt.rollout_elapsed >= 3.0
        assert opt.replica_hits > 0


class TestProvisioningHarness:
    def test_fingerprint_is_deterministic(self):
        assert perf.provisioning_fingerprint(n_sites=8) \
            == perf.provisioning_fingerprint(n_sites=8)

    def test_baseline_roundtrip_and_drift_detection(self):
        suite = perf.provisioning_suite(quick=True)
        assert perf.compare_provisioning_baseline(suite, suite) == []
        tampered = {
            "results": {"provisioning": {"details": dict(
                suite["results"]["provisioning"]["details"],
                rollout_speedup=1.0,
            )}},
            "fingerprint": dict(suite["fingerprint"],
                                optimized_result_digest="deadbeef"),
        }
        failures = perf.compare_provisioning_baseline(tampered, suite)
        assert any("fell below" in f for f in failures)
        assert any("fingerprint drift" in f for f in failures)

    def test_committed_baseline_matches(self):
        """BENCH_provisioning.json stays in lockstep with the code."""
        import json
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_provisioning.json")
        with open(path) as handle:
            baseline = json.load(handle)
        suite = perf.provisioning_suite()
        assert perf.compare_provisioning_baseline(suite, baseline) == []
