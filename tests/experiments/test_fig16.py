"""Fig. 16: retries + overlay takeover must keep the VO serving
through super-peer churn that visibly degrades the fragile baseline."""

import pytest

from repro import perf
from repro.experiments.fig16 import (
    format_fig16,
    format_fig16_slo,
    run_fig16,
    run_fig16_point,
    run_fig16_slo,
)


@pytest.fixture(scope="module")
def quick_pair():
    # quick sizes mirror ``run_fig16(quick=True)`` without the
    # determinism double-run (covered by its own test below)
    return run_fig16(seed=33, quick=True, verify_determinism=False)


class TestFig16Pair:
    def test_resilient_series_stays_available(self, quick_pair):
        fragile, resilient = quick_pair
        assert resilient.resolution_success_rate >= 0.95
        assert resilient.provision_success_rate >= 0.95

    def test_fragile_series_visibly_degrades(self, quick_pair):
        fragile, resilient = quick_pair
        assert fragile.resolution_failures > 0
        assert fragile.resolution_success_rate < resilient.resolution_success_rate
        assert fragile.provision_success_rate < resilient.provision_success_rate

    def test_takeovers_only_with_the_detector_on(self, quick_pair):
        fragile, resilient = quick_pair
        assert resilient.reelections >= 1
        assert fragile.reelections == 0
        assert resilient.crashes == fragile.crashes > 0

    def test_retries_engaged_and_recovery_measured(self, quick_pair):
        fragile, resilient = quick_pair
        assert resilient.retries > 0
        assert len(resilient.recovery_times) == resilient.reelections
        assert all(t > 0.0 for t in resilient.recovery_times)

    def test_same_seed_reproduces_digest(self, quick_pair):
        _, resilient = quick_pair
        again = run_fig16(seed=33, quick=True, verify_determinism=False)[1]
        assert again.result_digest == resilient.result_digest
        assert again.recovery_times == resilient.recovery_times

    def test_format_reports_both_series(self, quick_pair):
        text = format_fig16(list(quick_pair))
        assert "fragile" in text
        assert "resilient" in text
        assert "re-elections" in text
        assert "takeover" in text


@pytest.fixture(scope="module")
def slo_pair():
    return run_fig16_slo(seed=33, quick=True, verify_determinism=False)


@pytest.mark.slow
class TestFig16SLO:
    def test_every_crash_is_detected_in_both_series(self, slo_pair):
        for point in slo_pair:
            assert point.crashes > 0
            assert point.undetected_crashes == 0
            assert len(point.detection_latencies) == point.crashes
            assert point.alerts_fired >= point.crashes

    def test_detection_beats_the_fast_window(self, slo_pair):
        # the fast burn-rate rule looks back 30s, so MTTD must land
        # within one window plus one evaluation tick
        for point in slo_pair:
            assert all(0.0 < t <= 35.0 for t in point.detection_latencies)
            assert all(t > 0.0 for t in point.repair_times)

    def test_error_budget_verdicts_separate_the_series(self, slo_pair):
        fragile, resilient = slo_pair
        # without takeover the client-visible SLO burns out; retries +
        # re-election keep the resilient client inside its budget
        assert fragile.slo_verdicts["client-availability"] == "exhausted"
        assert resilient.slo_verdicts["client-availability"] == "met"
        # the server-side attempt stream sees the crashes either way
        assert resilient.slo_verdicts["rdm-attempt-availability"] == "exhausted"

    def test_rendered_report_carries_every_plane(self, slo_pair):
        for point in slo_pair:
            assert "fig16 SLO extension" in point.report
            assert "Service-level objectives" in point.report
            assert "Burn-rate alerts" in point.report
            assert "VO health" in point.report

    def test_detection_is_deterministic(self, slo_pair):
        # verify_determinism=True re-runs the resilient series and
        # raises on any digest / MTTD / MTTR divergence
        fragile, resilient = run_fig16_slo(seed=33, quick=True,
                                           verify_determinism=True)
        assert resilient.detection_latencies == slo_pair[1].detection_latencies
        assert resilient.repair_times == slo_pair[1].repair_times
        assert fragile.result_digest == slo_pair[0].result_digest

    def test_format_reports_detection_columns(self, slo_pair):
        text = format_fig16_slo(*slo_pair)
        assert "mean-MTTD-s" in text and "mean-MTTR-s" in text
        assert "fragile" in text and "resilient" in text
        assert "exhausted" in text and "met" in text


class TestFaultsHarness:
    def test_fingerprint_stable_across_runs(self):
        first = perf.faults_fingerprint(seed=7)
        again = perf.faults_fingerprint(seed=7)
        assert first == again

    def test_baseline_compare_flags_drift(self):
        fingerprint = perf.faults_fingerprint(seed=7)
        suite = {
            "results": {"faults": {"details": {
                "resilient_resolution_success": 1.0,
                "resilient_provision_success": 1.0,
                "fragile_resolution_success": 0.5,
                "reelections": fingerprint["reelections"],
                "fragile_reelections": 0,
            }}},
            "fingerprint": fingerprint,
        }
        baseline = {"fingerprint": dict(fingerprint)}
        assert perf.compare_faults_baseline(suite, baseline) == []
        baseline["fingerprint"]["resilient_result_digest"] = "deadbeef"
        failures = perf.compare_faults_baseline(suite, baseline)
        assert any("resilient_result_digest" in f for f in failures)
