"""Fig. 16: retries + overlay takeover must keep the VO serving
through super-peer churn that visibly degrades the fragile baseline."""

import pytest

from repro import perf
from repro.experiments.fig16 import format_fig16, run_fig16, run_fig16_point


@pytest.fixture(scope="module")
def quick_pair():
    # quick sizes mirror ``run_fig16(quick=True)`` without the
    # determinism double-run (covered by its own test below)
    return run_fig16(seed=33, quick=True, verify_determinism=False)


class TestFig16Pair:
    def test_resilient_series_stays_available(self, quick_pair):
        fragile, resilient = quick_pair
        assert resilient.resolution_success_rate >= 0.95
        assert resilient.provision_success_rate >= 0.95

    def test_fragile_series_visibly_degrades(self, quick_pair):
        fragile, resilient = quick_pair
        assert fragile.resolution_failures > 0
        assert fragile.resolution_success_rate < resilient.resolution_success_rate
        assert fragile.provision_success_rate < resilient.provision_success_rate

    def test_takeovers_only_with_the_detector_on(self, quick_pair):
        fragile, resilient = quick_pair
        assert resilient.reelections >= 1
        assert fragile.reelections == 0
        assert resilient.crashes == fragile.crashes > 0

    def test_retries_engaged_and_recovery_measured(self, quick_pair):
        fragile, resilient = quick_pair
        assert resilient.retries > 0
        assert len(resilient.recovery_times) == resilient.reelections
        assert all(t > 0.0 for t in resilient.recovery_times)

    def test_same_seed_reproduces_digest(self, quick_pair):
        _, resilient = quick_pair
        again = run_fig16(seed=33, quick=True, verify_determinism=False)[1]
        assert again.result_digest == resilient.result_digest
        assert again.recovery_times == resilient.recovery_times

    def test_format_reports_both_series(self, quick_pair):
        text = format_fig16(list(quick_pair))
        assert "fragile" in text
        assert "resilient" in text
        assert "re-elections" in text
        assert "takeover" in text


class TestFaultsHarness:
    def test_fingerprint_stable_across_runs(self):
        first = perf.faults_fingerprint(seed=7)
        again = perf.faults_fingerprint(seed=7)
        assert first == again

    def test_baseline_compare_flags_drift(self):
        fingerprint = perf.faults_fingerprint(seed=7)
        suite = {
            "results": {"faults": {"details": {
                "resilient_resolution_success": 1.0,
                "resilient_provision_success": 1.0,
                "fragile_resolution_success": 0.5,
                "reelections": fingerprint["reelections"],
                "fragile_reelections": 0,
            }}},
            "fingerprint": fingerprint,
        }
        baseline = {"fingerprint": dict(fingerprint)}
        assert perf.compare_faults_baseline(suite, baseline) == []
        baseline["fingerprint"]["resilient_result_digest"] = "deadbeef"
        failures = perf.compare_faults_baseline(suite, baseline)
        assert any("resilient_result_digest" in f for f in failures)
