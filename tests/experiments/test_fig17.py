"""Tests for the Fig. 17 sharded-storage experiment."""

from __future__ import annotations

import pytest

from repro.experiments.fig17 import (
    Fig17RoutingPoint,
    fig17_digest,
    format_fig17,
    run_routing_point,
    run_storage_point,
)
from repro.glare.storage import StorageConfig
from repro.vo import build_vo


class TestStorageSweep:
    def test_storage_point_digests_and_bounds(self):
        points = run_storage_point(2_000, shard_counts=(4, 16))
        assert [p.backend for p in points] == ["dict", "sharded/4",
                                               "sharded/16"]
        dict_point = points[0]
        for point in points[1:]:
            assert point.lookup_digest == dict_point.lookup_digest
            assert point.digest_matches_dict
            assert point.max_shard <= (2_000 / point.shards) * 1.5
            assert point.per_lookup_ns > 0

    def test_storage_point_is_deterministic(self):
        a = run_storage_point(1_000, shard_counts=(4,))
        b = run_storage_point(1_000, shard_counts=(4,))
        assert [p.lookup_digest for p in a] == [p.lookup_digest for p in b]
        assert a[1].max_shard == b[1].max_shard


class TestRoutingSweep:
    @pytest.fixture(scope="class")
    def pair(self):
        base = run_routing_point(4, 200, routed=False, seed=23)
        routed = run_routing_point(4, 200, routed=True, seed=23)
        return base, routed

    def test_routed_matches_broadcast_results(self, pair):
        base, routed = pair
        assert base.result_digest == routed.result_digest
        assert base.lookups == routed.lookups > 0

    def test_routed_cuts_message_cost(self, pair):
        base, routed = pair
        assert routed.messages_per_lookup < base.messages_per_lookup
        assert routed.shard_route_hits > 0
        assert routed.shard_handoffs > 0

    def test_broadcast_series_has_no_shard_traffic(self, pair):
        base, _ = pair
        assert base.shard_route_hits == 0
        assert base.shard_handoffs == 0

    def test_fig17_digest_and_format(self, pair):
        base, routed = pair
        results = {"storage": run_storage_point(1_000, shard_counts=(4,)),
                   "routing": [base, routed]}
        digest = fig17_digest(results)
        assert len(digest) == 64
        text = format_fig17(results)
        assert "Fig. 17a" in text and "Fig. 17b" in text
        assert "results ==" in text


class TestShardedBackendInVO:
    def test_sharded_home_without_routing_is_invisible(self):
        """Sharded resource homes alone (no directory routing) must
        produce the identical resolution protocol and results."""
        import hashlib

        def run(storage):
            vo = build_vo(n_sites=8, seed=31, group_size=4,
                          monitors=False, lifecycle=False, storage=storage)
            vo.form_overlay()
            names = vo.site_names
            from repro.experiments.fig17 import TYPE_XML_TEMPLATE
            vo.run_process(vo.client_call(
                names[-1], "register_type",
                payload={"xml": TYPE_XML_TEMPLATE.format(name="ShardApp")},
            ))
            records = []

            def resolve(site):
                try:
                    wire = yield from vo.client_call(
                        site, "resolve_type", payload={"type": "ShardApp"})
                    records.append(f"{site}|{wire['xml']}")
                except Exception as error:
                    records.append(f"{site}|error:{type(error).__name__}")

            for site in names[:3]:
                vo.run_process(resolve(site))
            digest = hashlib.sha256("\n".join(records).encode()).hexdigest()
            return digest, vo.network.total_messages

        dict_digest, dict_msgs = run(None)
        shard_digest, shard_msgs = run(StorageConfig.sharded(shards=4))
        assert dict_digest == shard_digest
        assert dict_msgs == shard_msgs
