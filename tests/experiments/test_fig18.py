"""Fig. 18: open-loop overload must degrade gracefully — goodput
plateaus with admission shedding engaged, it never collapses."""

import pytest

from repro.experiments.fig18 import (
    format_fig18,
    run_fig18_capacity,
    run_fig18_point,
    run_fig18_wave,
)

#: tiny-but-meaningful sweep shape shared by the module fixtures
TINY = dict(seed=41, n_sites=5, n_types=4, horizon=10.0, warmup=2.0)
CAPACITY = 600.0


@pytest.fixture(scope="module")
def nominal_point():
    return run_fig18_point(multiple=1.0, capacity=CAPACITY, **TINY)


@pytest.fixture(scope="module")
def overload_point():
    return run_fig18_point(multiple=3.0, capacity=CAPACITY, **TINY)


class TestCapacityProbe:
    def test_probe_finds_positive_capacity(self):
        capacity = run_fig18_capacity(seed=41, n_sites=5, n_types=4,
                                      clients=16, horizon=6.0, warmup=1.5)
        assert capacity > 0.0
        assert capacity == round(capacity, 1)  # stable table rendering


class TestOverloadSweep:
    def test_nominal_load_is_mostly_served(self, nominal_point):
        assert nominal_point.completed > 0
        assert nominal_point.goodput > 0.0
        measured = (nominal_point.completed + nominal_point.shed
                    + nominal_point.timeouts + nominal_point.failed)
        assert nominal_point.completed >= 0.9 * measured

    def test_overload_sheds_but_goodput_survives(self, nominal_point,
                                                 overload_point):
        assert overload_point.shed > 0
        assert overload_point.shed_rate > nominal_point.shed_rate
        # the plateau: more offered load must not crater completions
        assert overload_point.goodput >= 0.6 * nominal_point.goodput
        assert overload_point.failed == 0

    def test_server_attributes_sheds_per_op(self, overload_point):
        shed_by_op = overload_point.server_shed_by_op
        assert sum(shed_by_op.values()) >= overload_point.shed
        assert all(op in ("get_deployments", "instantiate")
                   for op in shed_by_op)

    def test_latency_profile_degrades_under_overload(self, nominal_point,
                                                     overload_point):
        nominal = nominal_point.per_op["resolve"]
        overload = overload_point.per_op["resolve"]
        assert overload["p99_ms"] >= nominal["p99_ms"]
        assert nominal["p50_ms"] > 0.0

    def test_streaming_footprint_stays_fixed(self, nominal_point,
                                             overload_point):
        # 3x the arrivals, same measurement shape: the histogram grid
        # and window table do not grow with offered load
        assert overload_point.arrivals > 2 * nominal_point.arrivals
        assert (overload_point.stats_footprint_bytes
                <= nominal_point.stats_footprint_bytes * 1.5)

    def test_same_seed_reproduces_digest(self, overload_point):
        again = run_fig18_point(multiple=3.0, capacity=CAPACITY, **TINY)
        assert again.result_digest == overload_point.result_digest
        assert again.server_shed_by_op == overload_point.server_shed_by_op


class TestProvisioningWave:
    def test_wave_installs_everywhere_with_ttr(self):
        wave = run_fig18_wave(seed=41, n_sites=5, n_types=4, span=12.0)
        assert wave.installs == 4 * 5  # every (type, site) pair
        assert wave.statuses.get("installed") == wave.installs
        assert 0.0 < wave.ttr["p50_s"] <= wave.ttr["p99_s"] <= wave.ttr["max_s"]
        assert wave.wave_seconds > 0.0
        again = run_fig18_wave(seed=41, n_sites=5, n_types=4, span=12.0)
        assert again.result_digest == wave.result_digest


@pytest.mark.slow
class TestFig18EndToEnd:
    def test_quick_cli_fans_out_and_degrades_gracefully(self, capsys):
        # the full quick driver: capacity probe, 0.5x-4x sweep with the
        # determinism repeat, flash crowd, wave — fanned across two
        # workers, merged digest order-independent by construction
        from repro.cli import main

        assert main(["fig18", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "offered" in out
        assert "flash" in out.lower()
        assert "wave" in out.lower()


class TestFormatting:
    def test_format_renders_all_sections(self, nominal_point, overload_point):
        from repro.experiments.fig18 import Fig18Flash, Fig18Result, Fig18Wave

        flash = Fig18Flash(capacity=CAPACITY, hot_spike_rate=1200.0,
                           phases={"before": {"arrivals": 10, "goodput": 5.0,
                                              "shed": 0, "timeouts": 0,
                                              "hot_completed": 3,
                                              "hot_p99_ms": 1.0,
                                              "bg_p99_ms": 1.0}},
                           result_digest="d" * 64)
        wave = Fig18Wave(installs=4, statuses={"installed": 4},
                         ttr={"p50_s": 9.0, "p90_s": 11.0, "p99_s": 12.0,
                              "max_s": 12.0},
                         wave_seconds=9.0, result_digest="e" * 64)
        result = Fig18Result(capacity=CAPACITY,
                             points=[nominal_point, overload_point],
                             flash=flash, wave=wave, merged_digest="f" * 64)
        text = format_fig18(result)
        assert "offered" in text
        assert "shed" in text.lower()
        assert "wave" in text.lower()
