"""Fig. 19: desired-state orchestration under a flash crowd.

Tiny-but-meaningful shapes of the fig19 driver: the orchestrated
series must scale out, recover goodput, and drain back to min
replicas; the static twin of the same seeded workload must not move;
double runs must be digest-identical.
"""

import pytest

from repro.experiments.fig19 import (
    Fig19Flash,
    Fig19Result,
    HOT_TYPE,
    format_fig19,
    run_fig19_flash,
)

#: the quick-mode shape, shrunk once here and shared by the fixtures
TINY = dict(seed=43, n_sites=6, max_replicas=3, horizon=40.0, warmup=4.0,
            spike_start=10.0, spike_end=26.0, adapt=8.0)


@pytest.fixture(scope="module")
def orchestrated():
    return run_fig19_flash(orchestrated=True, **TINY)


@pytest.fixture(scope="module")
def static():
    return run_fig19_flash(orchestrated=False, **TINY)


class TestOrchestratedSeries:
    def test_scales_out_within_bounds(self, orchestrated):
        assert orchestrated.max_replicas_seen >= 2
        assert orchestrated.max_replicas_seen <= TINY["max_replicas"]
        assert orchestrated.installs >= 1

    def test_drains_back_to_min_replicas(self, orchestrated):
        assert orchestrated.final_replicas == 1
        assert orchestrated.drains >= 1
        # the series ends lower than its peak: scale-in actually ran
        peak = max(n for _, n in orchestrated.replica_series)
        assert orchestrated.replica_series[-1][1] < peak

    def test_goodput_recovers_to_pre_spike_plateau(self, orchestrated):
        phases = orchestrated.phases
        assert phases["recovered"]["goodput"] >= phases["before"]["goodput"]
        assert phases["recovered"]["hot_goodput"] > 0

    def test_convergence_times_recorded(self, orchestrated):
        assert orchestrated.convergence_times
        assert all(t > 0 for t in orchestrated.convergence_times)
        assert orchestrated.reconcile_rounds > len(
            orchestrated.convergence_times
        )

    def test_same_seed_reproduces_digest(self, orchestrated):
        again = run_fig19_flash(orchestrated=True, **TINY)
        assert again.result_digest == orchestrated.result_digest
        assert again.replica_series == orchestrated.replica_series


class TestStaticSeries:
    def test_replica_count_never_moves(self, static):
        assert static.max_replicas_seen == 1
        assert static.final_replicas == 1
        assert static.installs == 0
        assert static.drains == 0
        assert static.reconcile_rounds == 0

    def test_orchestration_beats_static_on_hot_goodput(self, orchestrated,
                                                       static):
        orch = orchestrated.phases["recovered"]["hot_goodput"]
        base = static.phases["recovered"]["hot_goodput"]
        assert orch >= 1.2 * base

    def test_series_digests_differ(self, orchestrated, static):
        assert orchestrated.result_digest != static.result_digest


@pytest.mark.slow
class TestFig19EndToEnd:
    def test_quick_cli_fans_out_and_asserts(self, capsys):
        from repro.cli import main

        assert main(["fig19", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "orchestrated" in out
        assert "replica trajectory" in out
        assert "convergence" in out


class TestFormatting:
    def test_format_renders_both_series(self):
        flash = Fig19Flash(
            orchestrated=True, spike_rate=400.0,
            phases={"before": {"arrivals": 10, "goodput": 5.0,
                               "hot_goodput": 2.0, "hot_shed": 0,
                               "hot_p99_ms": 1.0}},
            replica_series=[(0.0, 1), (8.0, 3), (30.0, 1)],
            max_replicas_seen=3, final_replicas=1, reconcile_rounds=9,
            installs=2, drains=2, convergence_times=[4.0],
            result_digest="a" * 64,
        )
        static = Fig19Flash(
            orchestrated=False, spike_rate=400.0,
            phases={"before": {"arrivals": 10, "goodput": 5.0,
                               "hot_goodput": 2.0, "hot_shed": 0,
                               "hot_p99_ms": 1.0}},
            replica_series=[(0.0, 1)], max_replicas_seen=1,
            final_replicas=1, result_digest="b" * 64,
        )
        text = format_fig19(Fig19Result(orchestrated=flash, static=static,
                                        merged_digest="c" * 64))
        assert HOT_TYPE not in text  # the table speaks in series terms
        assert "orchestrated" in text
        assert "static" in text
        assert "1@0s" in text and "3@8s" in text
