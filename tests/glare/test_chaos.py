"""Chaos and scale tests: failures mid-operation, churn, larger VOs.

These exercise the paper's §3.3 claim end-to-end: "If some sites or
services fail, the rest of the GLARE system continues working."
"""

import pytest

from repro.apps import get_application, publish_applications
from repro.glare.model import ActivityDeployment
from repro.vo import build_vo


class TestMidOperationFailures:
    def test_target_site_dies_during_installation(self):
        """The deployment moves to another site when the target crashes
        mid-install (the RPC times out, the manager tries the next
        candidate)."""
        vo = build_vo(n_sites=4, seed=211, monitors=False)
        publish_applications(vo, ["Invmod"])  # long installation (~30 s)
        vo.form_overlay()
        spec = get_application("Invmod")
        vo.run_process(vo.client_call("agrid01", "register_type",
                                      payload={"xml": spec.type_xml}))

        rdm = vo.rdm("agrid01")

        def first_candidate():
            at = spec.activity_type()
            names = yield from rdm.deployment_manager._candidate_sites(
                at.installation.constraints, None)
            return names

        victim = vo.run_process(first_candidate())[0]

        # crash the victim 10 seconds into the run (installation takes
        # ~30 s, so it will be mid-install)
        def assassin():
            yield vo.sim.timeout(vo.sim.now + 10.0 - vo.sim.now + 10.0)
            vo.stack(victim).site.fail()

        vo.sim.process(assassin())

        def client():
            wires = yield from vo.client_call("agrid02", "get_deployments",
                                              payload="Invmod")
            return wires

        wires = vo.run_process(client())
        sites = {ActivityDeployment.from_xml(w["xml"]).site for w in wires}
        assert sites and victim not in sites

    def test_requester_survives_community_site_failure(self):
        """Losing the community-index site doesn't break discovery
        inside formed groups."""
        vo = build_vo(n_sites=6, seed=213, monitors=False, group_size=3)
        groups = vo.form_overlay()
        community = vo.community_site
        # pick provider+client in a group not containing the community site
        other_group = next(
            members for sp, members in groups.items()
            if community not in members and len(members) >= 2
        )
        provider, client = other_group[0], other_group[1]
        type_xml = ('<ActivityTypeEntry name="Hardy" kind="concrete">'
                    "<Domain>x</Domain></ActivityTypeEntry>")
        vo.run_process(vo.client_call(provider, "register_type",
                                      payload={"xml": type_xml}))
        vo.stack(community).site.fail()
        wire = vo.run_process(vo.client_call(client, "lookup_type",
                                             payload="Hardy"))
        assert wire is not None

    def test_cache_serves_while_source_down(self):
        """A cached deployment keeps answering after its source dies."""
        vo = build_vo(n_sites=3, seed=217, monitors=False)
        publish_applications(vo, ["Wien2k"])
        vo.form_overlay()
        spec = get_application("Wien2k")
        vo.run_process(vo.client_call("agrid01", "register_type",
                                      payload={"xml": spec.type_xml}))
        wires = vo.run_process(vo.client_call("agrid02", "get_deployments",
                                              payload="Wien2k"))
        target = ActivityDeployment.from_xml(wires[0]["xml"]).site
        vo.stack(target).site.fail()
        # agrid02 still answers from its cache (stale, but available —
        # the refresher would eventually reconcile)
        wires_again = vo.run_process(vo.client_call(
            "agrid02", "get_deployments",
            payload={"type": "Wien2k", "auto_deploy": False},
        ))
        assert wires_again


class TestChurn:
    def test_membership_growth_triggers_reelection(self):
        """New sites joining the community cause a fresh election that
        folds them into groups."""
        vo = build_vo(n_sites=6, seed=219, monitors=True, group_size=3)
        # let the index monitor run the first election
        vo.sim.run(until=60)
        coordinator = vo.rdm(vo.community_site)
        first_elections = coordinator.overlay.elections_run
        assert first_elections >= 1
        assert all(vo.rdm(n).overlay.view.super_peer for n in vo.site_names)

        # a previously dead site "joins": here we simulate membership
        # change by failing one site (membership shrinks after TTL)
        vo.stack("agrid05").site.fail()
        vo.sim.run(until=vo.sim.now + 300)
        assert coordinator.overlay.elections_run > first_elections
        # the dead site is in nobody's current group
        for name in vo.site_names:
            if name == "agrid05":
                continue
            view = vo.rdm(name).overlay.view
            assert "agrid05" not in view.member_sites() or view.epoch == 0

    def test_recovered_site_rejoins_groups(self):
        vo = build_vo(n_sites=5, seed=223, monitors=True, group_size=3)
        vo.sim.run(until=60)
        vo.stack("agrid04").site.fail()
        vo.sim.run(until=vo.sim.now + 300)
        vo.stack("agrid04").site.recover()
        vo.stack("agrid04").index.start()  # keepalive resumes
        vo.sim.run(until=vo.sim.now + 400)
        view = vo.rdm("agrid04").overlay.view
        assert view.super_peer  # re-assigned by a later election round


class TestScale:
    def test_twenty_site_discovery_across_groups(self):
        vo = build_vo(n_sites=20, seed=227, monitors=False, group_size=4)
        groups = vo.form_overlay()
        assert len(groups) == 5
        type_xml = ('<ActivityTypeEntry name="Far" kind="concrete">'
                    "<Domain>x</Domain></ActivityTypeEntry>")
        # register on the last site, resolve from the first: the request
        # must cross group boundaries through the super group
        vo.run_process(vo.client_call("agrid19", "register_type",
                                      payload={"xml": type_xml}))
        wire = vo.run_process(vo.client_call("agrid00", "lookup_type",
                                             payload="Far"))
        assert wire is not None
        # and the result was cached locally for next time
        assert vo.stack("agrid00").atr.find_type("Far") is not None

    def test_template_roundtrip(self):
        from repro.glare.model import ActivityType

        vo = build_vo(n_sites=2, seed=229, monitors=False)
        xml = vo.run_process(vo.client_call("agrid01", "get_template",
                                            payload="FreshApp"))
        template = ActivityType.from_xml(xml)
        assert template.name == "FreshApp"
        assert template.installation is not None
        # a provider can edit and register the template directly
        out = vo.run_process(vo.client_call("agrid01", "register_type",
                                            payload={"xml": xml}))
        assert out["registered"] == "FreshApp"
