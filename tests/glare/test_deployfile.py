"""Unit tests for deploy-file parsing and validation (paper Fig. 9)."""

import pytest

from repro.glare.deployfile import parse_deployfile
from repro.glare.errors import InvalidTypeDescription

POVRAY_DEPLOYFILE = """
<Build baseDir="/tmp/papers/" defaultTask="Deploy" name="Povray">
  <Step name="Init" task="mkdir-p" baseDir="$DEPLOYMENT_DIR" timeout="10">
    <Env name="POVRAY_HOME" value="$DEPLOYMENT_DIR/povray/"/>
    <Env name="POVRAY_DIR" value="/tmp/povray/"/>
    <Property name="argument" value="$POVRAY_HOME"/>
    <Property name="argument" value="$POVRAY_DIR"/>
  </Step>
  <Step name="Download" depends="Init" task="$GLOBUS_LOCATION/bin/globus-url-copy"
        baseDir="$POVRAY_DIR" timeout="20">
    <Property name="source" value="http://www.povray.org/povlinux-3.6.tgz"/>
    <Property name="destination" value="file:///$POVRAY_DIR/povray.tgz"/>
    <Property name="md5sum" value="feedbeef"/>
  </Step>
  <Step name="Expand" depends="Download" task="tar xvfz" baseDir="$POVRAY_DIR" timeout="10">
    <Property name="argument" value="$POVRAY_DIR/povray.tgz"/>
    <Produces path="povray-3.6.1/configure" size="40000" executable="true"/>
  </Step>
  <Step name="Configure" depends="Expand" task="./configure" demand="3.5"
        baseDir="$POVRAY_DIR/povray-3.6.1" timeout="100">
    <Dialog expect="Do you accept the license?" send="yes" delay="0.3"/>
    <Dialog expect="Install path:" send="$POVRAY_HOME" delay="0.2"/>
  </Step>
  <Step name="Build" depends="Configure" task="make" demand="120"
        baseDir="$POVRAY_DIR/povray-3.6.1" timeout="200">
    <Produces path="bin/povray" size="1500000" executable="true"/>
  </Step>
</Build>
"""


class TestParsing:
    def test_parse_fig9_deployfile(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        assert recipe.name == "Povray"
        assert recipe.default_task == "Deploy"
        assert [s.name for s in recipe.steps] == [
            "Init", "Download", "Expand", "Configure", "Build",
        ]

    def test_step_kinds(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        kinds = {s.name: s.kind for s in recipe.steps}
        assert kinds == {
            "Init": "mkdir", "Download": "download", "Expand": "expand",
            "Configure": "compute", "Build": "compute",
        }

    def test_env_and_properties(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        init = recipe.step("Init")
        assert init.env["POVRAY_HOME"] == "$DEPLOYMENT_DIR/povray/"
        assert init.props("argument") == ["$POVRAY_HOME", "$POVRAY_DIR"]
        download = recipe.step("Download")
        assert download.prop("md5sum") == "feedbeef"
        assert download.prop("missing", "default") == "default"

    def test_dialogs(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        configure = recipe.step("Configure")
        assert len(configure.dialogs) == 2
        assert configure.dialogs[0].send == "yes"
        assert configure.dialogs[1].delay == pytest.approx(0.2)

    def test_produces(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        build = recipe.step("Build")
        assert build.produces[0].path == "bin/povray"
        assert build.produces[0].executable

    def test_collected_env(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        env = recipe.collected_env()
        assert set(env) == {"POVRAY_HOME", "POVRAY_DIR"}

    def test_download_urls(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        urls = recipe.download_urls()
        assert urls == [(
            "http://www.povray.org/povlinux-3.6.tgz",
            "file:///$POVRAY_DIR/povray.tgz",
            "feedbeef",
        )]

    def test_total_compute_demand(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        assert recipe.total_compute_demand() == pytest.approx(123.5)


class TestOrdering:
    def test_dependency_order(self):
        recipe = parse_deployfile(POVRAY_DEPLOYFILE)
        ordered = [s.name for s in recipe.ordered_steps()]
        assert ordered.index("Init") < ordered.index("Download")
        assert ordered.index("Download") < ordered.index("Expand")
        assert ordered.index("Configure") < ordered.index("Build")

    def test_parallel_branches_both_scheduled(self):
        recipe = parse_deployfile("""
<Build name="fan" baseDir="/tmp">
  <Step name="root" task="mkdir-p"/>
  <Step name="a" depends="root" task="make a"/>
  <Step name="b" depends="root" task="make b"/>
  <Step name="join" depends="a,b" task="make join"/>
</Build>""")
        ordered = [s.name for s in recipe.ordered_steps()]
        assert ordered[0] == "root"
        assert ordered[-1] == "join"
        assert set(ordered[1:3]) == {"a", "b"}

    def test_cycle_rejected(self):
        with pytest.raises(InvalidTypeDescription, match="cycle"):
            parse_deployfile("""
<Build name="loop" baseDir="/tmp">
  <Step name="a" depends="b" task="x"/>
  <Step name="b" depends="a" task="y"/>
</Build>""")

    def test_unknown_dependency_rejected(self):
        with pytest.raises(InvalidTypeDescription, match="unknown step"):
            parse_deployfile("""
<Build name="bad" baseDir="/tmp">
  <Step name="a" depends="ghost" task="x"/>
</Build>""")


class TestValidation:
    def test_wrong_root_rejected(self):
        with pytest.raises(InvalidTypeDescription, match="Build"):
            parse_deployfile("<Steps><Step name='a' task='x'/></Steps>")

    def test_empty_recipe_rejected(self):
        with pytest.raises(InvalidTypeDescription, match="no steps"):
            parse_deployfile('<Build name="empty" baseDir="/tmp"></Build>')

    def test_unnamed_step_rejected(self):
        with pytest.raises(InvalidTypeDescription, match="needs a name"):
            parse_deployfile('<Build name="x"><Step task="y"/></Build>')

    def test_duplicate_step_rejected(self):
        with pytest.raises(InvalidTypeDescription, match="duplicate"):
            parse_deployfile("""
<Build name="dup" baseDir="/tmp">
  <Step name="a" task="x"/>
  <Step name="a" task="y"/>
</Build>""")
