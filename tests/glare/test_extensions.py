"""Tests for the §6 future-work extensions: un-deployment, wrapper
generation, semantic search."""

import pytest

from repro.apps import get_application, publish_applications
from repro.glare.errors import DeploymentNotFound, GlareError
from repro.glare.model import ActivityDeployment
from repro.glare.semantics import SemanticIndex, SemanticQuery, SynonymTable
from repro.vo import build_vo


@pytest.fixture(scope="module")
def vo():
    vo = build_vo(n_sites=3, seed=131, monitors=False)
    publish_applications(vo)
    vo.form_overlay()
    spec = get_application("Wien2k")
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": spec.type_xml}))
    return vo


def deploy_wien2k(vo):
    # drop any cached references left by earlier tests (a prior
    # un-deployment leaves remote caches stale until the refresher runs)
    adr = vo.stack("agrid01").adr
    for key in list(adr.cached_deployments):
        adr.drop_cached_deployment(key)
    wires = vo.run_process(vo.client_call("agrid01", "get_deployments",
                                          payload="Wien2k"))
    return [ActivityDeployment.from_xml(w["xml"]) for w in wires]


class TestUndeploy:
    def test_undeploy_removes_registry_entry_and_files(self, vo):
        deployments = deploy_wien2k(vo)
        target = deployments[0]
        site_fs = vo.stack(target.site).site.fs
        assert site_fs.exists(target.path)

        out = vo.run_process(
            _call(vo, target.site, "undeploy", {"key": target.key})
        )
        assert out["undeployed"] == target.key
        assert out["files_removed"] > 0
        assert target.key not in vo.stack(target.site).adr.deployments
        assert not site_fs.exists(target.path)

    def test_undeploy_unknown_raises(self, vo):
        def run():
            try:
                yield from vo.client_call("agrid01", "undeploy",
                                          payload={"key": "nope:ghost"})
            except DeploymentNotFound:
                return "missing"

        assert vo.run_process(run()) == "missing"

    def test_undeploy_type_removes_all(self, vo):
        deployments = deploy_wien2k(vo)  # re-deploys after the first test
        site = deployments[0].site
        out = vo.run_process(_call(vo, site, "undeploy_type",
                                   {"type": "Wien2k", "remove_type": False}))
        assert len(out["deployments_removed"]) >= 1
        assert vo.stack(site).adr.local_deployments_for("Wien2k") == []
        # the type registration survives (remove_type=False)
        assert out["type_removed"] is False


class TestWrapperGeneration:
    def test_wrap_executable_creates_service(self, vo):
        deployments = deploy_wien2k(vo)
        executable = next(d for d in deployments if d.kind.value == "executable")
        site = executable.site
        out = vo.run_process(_call(vo, site, "generate_wrapper", executable.key))
        wrapper_key = out["wrapper"]
        adr = vo.stack(site).adr
        wrapper = adr.deployments[wrapper_key]
        assert wrapper.kind.value == "service"
        assert wrapper.endpoint.startswith("https://")
        assert wrapper.type_name == executable.type_name

        # instantiating the wrapper runs the legacy binary via GRAM
        gram = vo.network.node(site).services["gram"]
        jobs_before = gram.jobs_submitted
        outcome = vo.run_process(_call(vo, site, "instantiate",
                                       {"key": wrapper_key, "demand": 2.0}))
        assert outcome["exit_code"] == 0
        assert gram.jobs_submitted == jobs_before + 1

    def test_wrapping_service_rejected(self, vo):
        # the previous test left a wrapper service registered; trying to
        # wrap the wrapper itself must fail
        service_key = next(
            key for key, d in vo.stack("agrid00").adr.deployments.items()
            if d.kind.value == "service"
        )

        def run():
            try:
                yield from vo.network.call(
                    "agrid01", "agrid00", "glare-rdm", "generate_wrapper",
                    payload=service_key,
                )
            except GlareError:
                return "rejected"

        assert vo.run_process(run()) == "rejected"

    def test_wrap_unknown_raises(self, vo):
        def run():
            try:
                yield from vo.client_call("agrid01", "generate_wrapper",
                                          payload="ghost:key")
            except DeploymentNotFound:
                return "missing"

        assert vo.run_process(run()) == "missing"


class TestSemanticSearch:
    @pytest.fixture()
    def populated_vo(self):
        from repro.apps import register_application, register_base_hierarchy

        vo = build_vo(n_sites=2, seed=137, monitors=False)
        publish_applications(vo)
        vo.form_overlay()
        vo.run_process(register_base_hierarchy(vo, "agrid00"))
        for app in ("JPOVray", "Wien2k", "ImageViewer"):
            vo.run_process(register_application(vo, "agrid00", app))
        return vo

    def test_search_by_function_synonym(self, populated_vo):
        vo = populated_vo
        matches = vo.run_process(vo.client_call(
            "agrid00", "semantic_lookup",
            payload={"function": "convert", "inputs": ["scene"]},
        ))
        assert matches
        assert matches[0]["type"] == "JPOVray"

    def test_search_by_outputs(self, populated_vo):
        vo = populated_vo
        matches = vo.run_process(vo.client_call(
            "agrid00", "semantic_lookup",
            payload={"function": "render", "outputs": ["picture"]},
        ))
        assert [m["type"] for m in matches] == ["JPOVray"]

    def test_unmatchable_query_empty(self, populated_vo):
        vo = populated_vo
        matches = vo.run_process(vo.client_call(
            "agrid00", "semantic_lookup",
            payload={"function": "teleport"},
        ))
        assert matches == []

    def test_domain_boosts_score(self):
        from repro.glare.hierarchy import TypeHierarchy
        from repro.glare.model import ActivityFunction, ActivityType, TypeKind

        h = TypeHierarchy()
        for name, domain in [("A", "imaging"), ("B", "physics")]:
            h.add(ActivityType(
                name=name, kind=TypeKind.CONCRETE, domain=domain,
                functions=[ActivityFunction("run", ["data"], ["out"])],
            ))
        index = SemanticIndex(h)
        matches = index.search(SemanticQuery(function="run", domain="imaging"))
        assert [m.type_name for m in matches] == ["A", "B"]
        assert matches[0].score > matches[1].score

    def test_synonym_table(self):
        table = SynonymTable()
        assert table.same("render", "CONVERT")
        assert table.same("image", "bitmap")
        assert not table.same("render", "display")
        custom = SynonymTable(rings=[{"foo", "bar"}])
        assert custom.same("foo", "bar")
        assert not custom.same("render", "convert")  # defaults replaced


def _call(vo, site, method, payload):
    def run():
        value = yield from vo.network.call("agrid01", site, "glare-rdm",
                                           method, payload=payload)
        return value

    return run()
