"""Fault injection: transient transfer failures and handler retries."""

import pytest

from repro.glare.deployfile import parse_deployfile
from repro.glare.handlers import ExpectHandler
from repro.gridftp.service import GridFtpService, TransferError, UrlCatalog
from repro.net.network import Network
from repro.net.topology import Topology
from repro.simkernel import Simulator
from repro.site.description import SiteDescription
from repro.site.gridsite import GridSite

RECIPE = """
<Build baseDir="/opt/deployments/app" defaultTask="Deploy" name="app">
  <Step name="Init" task="mkdir-p" timeout="10">
    <Property name="argument" value="/opt/deployments/app"/>
  </Step>
  <Step name="Download" depends="Init" task="globus-url-copy" timeout="60"
        baseDir="/opt/deployments/app">
    <Property name="source" value="http://origin/app.tgz"/>
    <Property name="destination" value="file:///opt/deployments/app/app.tgz"/>
  </Step>
  <Step name="Expand" depends="Download" task="tar xvfz" timeout="30"
        baseDir="/opt/deployments/app">
    <Property name="argument" value="$DEPLOYMENT_DIR/app/app.tgz"/>
    <Produces path="bin/app" size="1000" executable="true"/>
  </Step>
</Build>
"""


def make_world(failure_rate, seed=37):
    sim = Simulator(seed=seed)
    topo = Topology.star("target", ["origin"], latency=0.003, bandwidth=1e7)
    net = Network(sim, topo)
    catalog = UrlCatalog()
    origin = GridSite(net, SiteDescription(name="origin"))
    target = GridSite(net, SiteDescription(name="target"))
    GridFtpService(net, "origin", fs=origin.fs, url_catalog=catalog)
    gridftp = GridFtpService(net, "target", fs=target.fs, url_catalog=catalog,
                             failure_rate=failure_rate)
    origin.fs.put_file("/www/app.tgz", size=1_000_000)
    catalog.publish("http://origin/app.tgz", "origin", "/www/app.tgz")
    return sim, target, gridftp


def run_install(sim, target, gridftp):
    handler = ExpectHandler(target, gridftp)
    proc = sim.process(handler.execute(parse_deployfile(RECIPE)))
    sim.run(until=proc)
    return proc.value


class TestTransientFailures:
    def test_flaky_transfer_retried_and_succeeds(self):
        # 40% failure rate: very likely at least one retry across seeds,
        # but 3 attempts nearly always suffice
        sim, target, gridftp = make_world(failure_rate=0.4, seed=2)
        report = run_install(sim, target, gridftp)
        assert report.success, report.error
        assert target.fs.exists("/opt/deployments/app/bin/app")

    def test_hopeless_transfer_eventually_fails(self):
        sim, target, gridftp = make_world(failure_rate=1.0)
        report = run_install(sim, target, gridftp)
        assert not report.success
        assert "transient" in report.error
        assert gridftp.transient_failures == 3  # all attempts burned
        # retries are counted apart from the failures: 3 failed
        # attempts means only 2 re-attempts were ever made
        assert gridftp.transfer_retries == 2

    def test_zero_failure_rate_never_retries(self):
        sim, target, gridftp = make_world(failure_rate=0.0)
        report = run_install(sim, target, gridftp)
        assert report.success
        assert gridftp.transient_failures == 0
        assert gridftp.transfer_retries == 0
        assert len(gridftp.transfers) == 1

    def test_retries_are_deterministic_per_seed(self):
        outcomes = set()
        for _ in range(2):
            sim, target, gridftp = make_world(failure_rate=0.5, seed=99)
            report = run_install(sim, target, gridftp)
            outcomes.add((report.success, gridftp.transient_failures, sim.now))
        assert len(outcomes) == 1

    def test_direct_fetch_raises_without_retry(self):
        """The retry policy lives in the handler, not in GridFTP."""
        sim, target, gridftp = make_world(failure_rate=1.0)

        def fetch():
            try:
                yield from gridftp.fetch_url("http://origin/app.tgz", "/tmp/x")
            except TransferError:
                return "failed-once"

        proc = sim.process(fetch())
        sim.run(until=proc)
        assert proc.value == "failed-once"
        assert gridftp.transient_failures == 1
        assert gridftp.transfer_retries == 0

    def test_failure_draws_keyed_per_source_path(self):
        """Fault draws for one transfer never perturb another's."""
        sim, target, gridftp = make_world(failure_rate=0.5, seed=11)
        draws = [
            sim.rng.uniform(f"gridftp-fail:target:/www/{n}.tgz", 0.0, 1.0)
            for n in ("a", "b")
        ]
        assert draws[0] != draws[1]
