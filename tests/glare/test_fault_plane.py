"""Unit + integration tests for the VO-wide fault plane.

Covers the declarative scenario knobs (crash schedules, churn rounds,
link loss, partitions, per-service error rules), the GridFTP
delegation, and the headline self-management story: crash a super-peer
through the plane and watch the overlay detect, vote and re-elect.
"""

import pytest

from repro.faults import (
    CrashSpec,
    FaultPlane,
    FaultsConfig,
    LinkRule,
    PartitionSpec,
    ServiceErrorRule,
)
from repro.net.interceptors import RemoteError
from repro.simkernel.errors import OfflineError
from repro.vo import VOConfig, build_vo


def make_vo(faults=None, n_sites=6, seed=11, **kwargs):
    kwargs.setdefault("monitors", False)
    kwargs.setdefault("lifecycle", False)
    vo = build_vo(VOConfig(n_sites=n_sites, seed=seed, faults=faults, **kwargs))
    return vo


class TestPlaneLifecycle:
    def test_disabled_by_default(self):
        vo = make_vo()
        assert not vo.faults.enabled
        assert vo.network.faults is vo.faults
        assert vo.network.interceptors == []

    def test_enabled_plane_installs_pipeline_layer(self):
        vo = make_vo(faults=FaultsConfig(links=(LinkRule(loss=0.5),)))
        assert vo.faults.enabled
        assert any(type(i).__name__ == "FaultInterceptor"
                   for i in vo.network.interceptors)

    def test_empty_config_counts_as_disabled(self):
        vo = make_vo(faults=FaultsConfig())
        assert not vo.faults.enabled


class TestCrashSchedules:
    def test_crash_and_restart_at_configured_times(self):
        vo = make_vo(faults=FaultsConfig(
            crashes=(CrashSpec(site="agrid02", at=10.0, down_for=5.0),)
        ))
        vo.sim.run(until=12.0)
        assert not vo.network.is_online("agrid02")
        vo.sim.run(until=20.0)
        assert vo.network.is_online("agrid02")
        kinds = [(e["kind"], e["site"], e["at"]) for e in vo.faults.events]
        assert kinds == [("crash", "agrid02", 10.0), ("restart", "agrid02", 15.0)]
        assert vo.faults.crashes_induced == 1

    def test_permanent_crash(self):
        vo = make_vo(faults=FaultsConfig(
            crashes=(CrashSpec(site="agrid03", at=5.0),)
        ))
        vo.sim.run(until=100.0)
        assert not vo.network.is_online("agrid03")

    def test_churn_selector_drives_victim_choice(self):
        vo = make_vo(faults=FaultsConfig(churn_times=(5.0, 15.0),
                                         churn_downtime=4.0))
        victims = iter(["agrid04", "agrid01"])
        vo.faults.churn_selector = lambda: next(victims)
        vo.sim.run(until=6.0)
        assert not vo.network.is_online("agrid04")
        vo.sim.run(until=16.0)
        assert vo.network.is_online("agrid04")  # restarted after 4s
        assert not vo.network.is_online("agrid01")
        crashed = [e["site"] for e in vo.faults.events if e["kind"] == "crash"]
        assert crashed == ["agrid04", "agrid01"]

    def test_churn_round_skipped_when_selector_returns_none(self):
        vo = make_vo(faults=FaultsConfig(churn_times=(5.0,)))
        vo.faults.churn_selector = lambda: None
        vo.sim.run(until=10.0)
        assert [e["kind"] for e in vo.faults.events] == ["churn-skip"]
        assert vo.faults.crashes_induced == 0

    def test_default_victim_draw_is_deterministic(self):
        def crashed_sites(seed):
            vo = make_vo(seed=seed, faults=FaultsConfig(churn_times=(5.0, 10.0),
                                                        churn_downtime=2.0))
            vo.sim.run(until=20.0)
            return [e["site"] for e in vo.faults.events if e["kind"] == "crash"]

        assert crashed_sites(11) == crashed_sites(11)


class TestLinkFaults:
    def test_partition_window_splits_the_vo(self):
        vo = make_vo(faults=FaultsConfig(partitions=(
            PartitionSpec(start=5.0, end=15.0, group=("agrid01", "agrid02")),
        )))
        vo.sim.run(until=6.0)

        def attempt(src, dst):
            try:
                yield from vo.network.call(src, dst, "mds-index", "probe")
                return "ok"
            except OfflineError:
                return "cut"

        # across the partition boundary: cut both ways
        assert vo.run_process(attempt("agrid01", "agrid03")) == "cut"
        assert vo.run_process(attempt("agrid03", "agrid02")) == "cut"
        # within one side: fine
        assert vo.run_process(attempt("agrid01", "agrid02")) == "ok"
        assert vo.run_process(attempt("agrid03", "agrid04")) == "ok"
        assert vo.faults.link_faults_injected == 2
        # after the window closes the paths heal
        vo.sim.run(until=16.0)
        assert vo.run_process(attempt("agrid01", "agrid03")) == "ok"

    def test_link_loss_is_seeded_and_counted(self):
        def outcomes(seed):
            vo = make_vo(seed=seed, faults=FaultsConfig(
                links=(LinkRule(loss=0.5, src="agrid01", dst="agrid02"),)
            ))
            results = []

            def attempt():
                try:
                    yield from vo.network.call(
                        "agrid01", "agrid02", "mds-index", "probe")
                    results.append("ok")
                except OfflineError:
                    results.append("drop")

            for _ in range(12):
                vo.run_process(attempt())
            return results, vo.faults.link_faults_injected

        first, injected = outcomes(13)
        again, _ = outcomes(13)
        assert first == again
        assert injected == first.count("drop") > 0

    def test_unmatched_traffic_unaffected(self):
        vo = make_vo(faults=FaultsConfig(
            links=(LinkRule(loss=1.0, src="agrid01", dst="agrid02"),)
        ))

        def attempt():
            value = yield from vo.network.call(
                "agrid03", "agrid04", "mds-index", "probe")
            return value

        assert vo.run_process(attempt()) is not None
        assert vo.faults.link_faults_injected == 0


class TestServiceErrorRules:
    def test_error_type_name_survives_the_wire(self):
        vo = make_vo(faults=FaultsConfig(service_errors=(
            ServiceErrorRule(service="mds-index", method="probe", rate=1.0,
                             error="IndexMeltdown"),
        )))

        def attempt():
            try:
                yield from vo.network.call(
                    "agrid01", "agrid02", "mds-index", "probe")
            except RemoteError as error:
                return error

        error = vo.run_process(attempt())
        assert error.error_type == "IndexMeltdown"
        assert error.transient  # synthetic faults are FaultInjected subclasses
        assert vo.faults.service_errors_injected == 1

    def test_method_filter_scopes_the_rule(self):
        vo = make_vo(faults=FaultsConfig(service_errors=(
            ServiceErrorRule(service="mds-index", method="list_sites", rate=1.0),
        )))

        def other_method():
            value = yield from vo.network.call(
                "agrid01", "agrid02", "mds-index", "probe")
            return value

        vo.run_process(other_method())  # must not raise
        assert vo.faults.service_errors_injected == 0


class TestGridFtpDelegation:
    def test_transfer_faults_draw_through_the_plane(self):
        """The legacy failure_rate knob counts on the shared plane."""
        vo = make_vo(seed=37)
        gridftp = vo.stack("agrid01").gridftp
        gridftp.failure_rate = 0.9
        vo.origin.fs.put_file("/www/blob.tgz", size=10_000)
        vo.url_catalog.publish("http://x/blob.tgz", "origin", "/www/blob.tgz")

        def fetch():
            try:
                yield from gridftp.fetch_url(
                    "http://x/blob.tgz", "/tmp/blob.tgz")
                return "ok"
            except Exception:
                return "failed"

        vo.run_process(fetch())
        assert vo.faults.transfer_faults_injected >= 1

    def test_zero_rate_never_touches_the_rng(self):
        vo = make_vo()
        plane = vo.faults
        assert plane.transfer_fault("agrid01", "/p", 0.0) is False
        assert "gridftp-fail:agrid01:/p" not in vo.sim.rng._streams


class TestSuperPeerCrashRecovery:
    """Satellite: the §3.4 story end-to-end through the fault plane."""

    def _overlay_vo(self, probe_interval=8.0, seed=23):
        vo = make_vo(
            n_sites=8, seed=seed, group_size=4, cache_enabled=False,
            faults=FaultsConfig(churn_times=(30.0,), churn_downtime=200.0),
        )
        for name in vo.site_names:
            vo.rdm(name).overlay.probe_interval = probe_interval
        groups = vo.form_overlay()
        # crash the super-peer of a group that does not hold the VO root
        eligible = sorted(sp for sp in groups
                          if vo.community_site not in groups[sp])
        victim = eligible[0]
        vo.faults.churn_selector = lambda: victim
        return vo, victim, sorted(groups[victim])

    def test_crash_triggers_verified_takeover(self):
        vo, victim, members = self._overlay_vo()
        epoch_before = max(vo.rdm(m).overlay.view.epoch
                           for m in members if m != victim)
        vo.sim.run(until=80.0)

        assert not vo.network.is_online(victim)
        reelections = sum(vo.rdm(n).overlay.reelections for n in vo.site_names)
        assert reelections == 1
        survivors = [m for m in members if m != victim]
        new_sp = {vo.rdm(m).overlay.view.super_peer for m in survivors}
        assert len(new_sp) == 1 and victim not in new_sp
        leader = new_sp.pop()
        # the takeover bumped the epoch and was logged with the victim
        view = vo.rdm(leader).overlay.view
        assert view.epoch > epoch_before
        log = vo.rdm(leader).overlay.takeover_log
        assert len(log) == 1 and log[0]["missing"] == victim
        assert log[0]["epoch"] == view.epoch
        # other groups learned the new super-peer list (the crashed
        # victim keeps its stale pre-crash view and is skipped)
        for name in vo.site_names:
            overlay = vo.rdm(name).overlay
            if overlay.is_super_peer and name not in (leader, victim):
                assert leader in overlay.view.super_peers
                assert victim not in overlay.view.super_peers

    def test_stale_group_assign_rejected_after_takeover(self):
        vo, victim, members = self._overlay_vo()
        vo.sim.run(until=80.0)
        survivors = [m for m in members if m != victim]
        follower = next(m for m in survivors
                        if not vo.rdm(m).overlay.is_super_peer)
        overlay = vo.rdm(follower).overlay
        view_before = overlay.view
        stale = {
            "group_id": view_before.group_id,
            "super_peer": victim,  # the dead one
            "members": [],
            "super_peers": [victim],
            "coordinator": view_before.coordinator,
            "epoch": view_before.epoch - 1,  # pre-takeover epoch
        }

        def send_stale(method):
            value = yield from vo.network.call(
                follower, follower, vo.rdm(follower).name, method,
                payload=stale)
            return value

        vo.run_process(send_stale("peer_assign"))
        vo.run_process(send_stale("group_assign"))
        assert overlay.view.super_peer != victim
        assert overlay.view.epoch == view_before.epoch

    def test_no_takeover_without_probes(self):
        vo, victim, members = self._overlay_vo(probe_interval=1e9)
        vo.sim.run(until=80.0)
        assert not vo.network.is_online(victim)
        assert sum(vo.rdm(n).overlay.reelections for n in vo.site_names) == 0

    def test_recovery_is_deterministic(self):
        def takeover_at(seed):
            vo, victim, members = self._overlay_vo(seed=seed)
            vo.sim.run(until=80.0)
            log = sorted(
                (entry["at"], entry["missing"])
                for name in vo.site_names
                for entry in vo.rdm(name).overlay.takeover_log
            )
            return log

        assert takeover_at(23) == takeover_at(23)
