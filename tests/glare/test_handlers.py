"""Unit tests for the Expect and JavaCoG deployment handlers."""

import pytest

from repro.glare.deployfile import parse_deployfile
from repro.glare.handlers import DeploymentHandler, ExpectHandler, JavaCoGHandler
from repro.gram.service import GramService
from repro.gridftp.service import GridFtpService, UrlCatalog
from repro.net.network import Network
from repro.net.topology import Topology
from repro.simkernel import Simulator
from repro.site.description import SiteDescription
from repro.site.gridsite import GridSite

RECIPE = """
<Build baseDir="/opt/deployments/app" defaultTask="Deploy" name="app">
  <Step name="Init" task="mkdir-p" timeout="10">
    <Property name="argument" value="$DEPLOYMENT_DIR/app"/>
  </Step>
  <Step name="Download" depends="Init" task="globus-url-copy" timeout="60"
        baseDir="$DEPLOYMENT_DIR/app">
    <Property name="source" value="http://origin/app.tgz"/>
    <Property name="destination" value="file:///opt/deployments/app/app.tgz"/>
    <Property name="md5sum" value="goodsum"/>
  </Step>
  <Step name="Expand" depends="Download" task="tar xvfz" timeout="30"
        baseDir="$DEPLOYMENT_DIR/app">
    <Property name="argument" value="$DEPLOYMENT_DIR/app/app.tgz"/>
    <Produces path="src/Makefile" size="2000" executable="false"/>
  </Step>
  <Step name="Build" depends="Expand" task="make" demand="4.0" timeout="120"
        baseDir="$DEPLOYMENT_DIR/app">
    <Dialog expect="accept license?" send="y" delay="0.5"/>
    <Produces path="bin/app" size="500000" executable="true"/>
  </Step>
</Build>
"""


@pytest.fixture()
def world():
    sim = Simulator(seed=31)
    topo = Topology.star("target", ["origin", "caller"],
                         latency=0.003, bandwidth=1e7)
    net = Network(sim, topo)
    catalog = UrlCatalog()
    origin = GridSite(net, SiteDescription(name="origin"))
    target = GridSite(net, SiteDescription(name="target"))
    net.add_node("caller")
    GridFtpService(net, "origin", fs=origin.fs, url_catalog=catalog)
    gridftp = GridFtpService(net, "target", fs=target.fs, url_catalog=catalog)
    GramService(net, "target", submission_overhead=1.0)
    origin.fs.put_file("/www/app.tgz", size=3_000_000, md5sum="goodsum")
    catalog.publish("http://origin/app.tgz", "origin", "/www/app.tgz")
    return sim, net, target, gridftp


def execute(sim, handler, recipe_text=RECIPE):
    recipe = parse_deployfile(recipe_text)
    proc = sim.process(handler.execute(recipe))
    sim.run(until=proc)
    return proc.value


class TestExpectHandler:
    def test_successful_install(self, world):
        sim, net, target, gridftp = world
        report = execute(sim, ExpectHandler(target, gridftp))
        assert report.success, report.error
        assert report.handler == "expect"
        # files materialised on the target filesystem
        assert target.fs.exists("/opt/deployments/app/app.tgz")
        assert target.fs.get_file("/opt/deployments/app/bin/app").executable
        assert target.fs.exists("/opt/deployments/app/src/Makefile")

    def test_timing_breakdown(self, world):
        sim, net, target, gridftp = world
        report = execute(sim, ExpectHandler(target, gridftp))
        assert report.handler_overhead == pytest.approx(2.1, abs=0.01)
        assert report.communication_time > 0.3  # 3MB transfer + setup
        assert report.installation_time > 4.0  # make demand + dialogs
        assert len(report.steps) == 4
        assert all(s.ok for s in report.steps)

    def test_dialogs_automated(self, world):
        sim, net, target, gridftp = world
        report = execute(sim, ExpectHandler(target, gridftp))
        build = [s for s in report.steps if s.name == "Build"][0]
        assert build.duration >= 4.5  # demand + dialog delay

    def test_md5_mismatch_fails_cleanly(self, world):
        sim, net, target, gridftp = world
        bad = RECIPE.replace("goodsum", "wrongsum")
        report = execute(sim, ExpectHandler(target, gridftp), bad)
        assert not report.success
        assert "Download" in report.error
        failed = [s for s in report.steps if not s.ok]
        assert [s.name for s in failed] == ["Download"]

    def test_missing_url_fails_cleanly(self, world):
        sim, net, target, gridftp = world
        bad = RECIPE.replace("http://origin/app.tgz", "http://nowhere/gone.tgz")
        report = execute(sim, ExpectHandler(target, gridftp), bad)
        assert not report.success
        assert "unresolvable" in report.error

    def test_wrong_gridftp_endpoint_rejected(self, world):
        sim, net, target, gridftp = world
        other_site = GridSite(net, SiteDescription(name="elsewhere"))
        with pytest.raises(ValueError):
            ExpectHandler(other_site, gridftp)


class TestJavaCoGHandler:
    def test_successful_install_via_gram(self, world):
        sim, net, target, gridftp = world
        handler = JavaCoGHandler(target, gridftp, net, caller="caller")
        report = execute(sim, handler)
        assert report.success, report.error
        assert report.handler == "javacog"
        assert target.fs.get_file("/opt/deployments/app/bin/app").executable
        # compute steps became GRAM jobs on the target
        gram = net.node("target").services["gram"]
        assert gram.jobs_submitted >= 3  # Init, Expand, Build

    def test_overheads(self, world):
        sim, net, target, gridftp = world
        handler = JavaCoGHandler(target, gridftp, net, caller="caller")
        report = execute(sim, handler)
        assert report.handler_overhead == pytest.approx(9.8, abs=0.01)
        # CoG's slow single-stream transfer: communication well above
        # the raw wire time
        assert report.communication_time > 1.0


def test_expect_vs_javacog_total(world):
    """Same recipe, same world parameters: Expect finishes sooner."""
    sim, net, target, gridftp = world
    expect_report = execute(sim, ExpectHandler(target, gridftp))

    # rebuild an identical world for the JavaCoG run
    sim2 = Simulator(seed=31)
    topo2 = Topology.star("target", ["origin", "caller"],
                          latency=0.003, bandwidth=1e7)
    net2 = Network(sim2, topo2)
    catalog2 = UrlCatalog()
    origin2 = GridSite(net2, SiteDescription(name="origin"))
    target2 = GridSite(net2, SiteDescription(name="target"))
    net2.add_node("caller")
    GridFtpService(net2, "origin", fs=origin2.fs, url_catalog=catalog2)
    gridftp2 = GridFtpService(net2, "target", fs=target2.fs, url_catalog=catalog2)
    GramService(net2, "target", submission_overhead=1.0)
    origin2.fs.put_file("/www/app.tgz", size=3_000_000, md5sum="goodsum")
    catalog2.publish("http://origin/app.tgz", "origin", "/www/app.tgz")
    cog_report = execute(sim2, JavaCoGHandler(target2, gridftp2, net2, caller="caller"))

    assert expect_report.success and cog_report.success
    assert expect_report.total_time < cog_report.total_time
