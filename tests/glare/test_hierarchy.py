"""Unit tests for the activity-type hierarchy (paper Fig. 2)."""

import pytest

from repro.glare.errors import CycleInHierarchy, TypeNotFound
from repro.glare.hierarchy import TypeHierarchy
from repro.glare.model import ActivityFunction, ActivityType, InstallationSpec, TypeKind


def abstract(name, bases=(), functions=()):
    return ActivityType(
        name=name, kind=TypeKind.ABSTRACT, base_types=list(bases),
        functions=[ActivityFunction(f) for f in functions],
    )


def concrete(name, bases=()):
    return ActivityType(
        name=name, kind=TypeKind.CONCRETE, base_types=list(bases),
        installation=InstallationSpec(deploy_file_url=f"http://x/{name}.build"),
    )


@pytest.fixture()
def paper_hierarchy():
    """The Fig. 2 hierarchy: Imaging -> POVray -> JPOVray (+multiple bases)."""
    h = TypeHierarchy()
    h.add(abstract("Imaging", functions=["export"]))
    h.add(abstract("POVray", bases=["Imaging"], functions=["render"]))
    h.add(concrete("JPOVray", bases=["POVray", "Imaging"]))
    return h


class TestStructure:
    def test_ancestors(self, paper_hierarchy):
        assert set(paper_hierarchy.ancestors("JPOVray")) == {"POVray", "Imaging"}
        assert paper_hierarchy.ancestors("Imaging") == []

    def test_descendants(self, paper_hierarchy):
        assert paper_hierarchy.descendants("Imaging") == ["JPOVray", "POVray"]
        assert paper_hierarchy.descendants("JPOVray") == []

    def test_concrete_types_for_abstract(self, paper_hierarchy):
        found = paper_hierarchy.concrete_types_for("Imaging")
        assert [t.name for t in found] == ["JPOVray"]

    def test_concrete_types_for_concrete_is_self(self, paper_hierarchy):
        found = paper_hierarchy.concrete_types_for("JPOVray")
        assert [t.name for t in found] == ["JPOVray"]

    def test_concrete_types_for_unknown_is_empty(self, paper_hierarchy):
        assert paper_hierarchy.concrete_types_for("Nothing") == []

    def test_inherited_functions(self, paper_hierarchy):
        names = paper_hierarchy.inherited_functions("JPOVray")
        assert set(names) == {"render", "export"}

    def test_roots(self, paper_hierarchy):
        assert paper_hierarchy.roots() == ["Imaging"]

    def test_dangling_base_tolerated(self):
        h = TypeHierarchy()
        h.add(concrete("App", bases=["NotYetKnown"]))
        assert "App" in h
        # the unknown base is reported by name but not traversed further
        assert h.ancestors("App") == ["NotYetKnown"]
        # learning the base later links the chain up
        h.add(abstract("NotYetKnown"))
        assert h.descendants("NotYetKnown") == ["App"]


class TestMutation:
    def test_replace_updates_edges(self):
        h = TypeHierarchy()
        h.add(abstract("A"))
        h.add(abstract("B"))
        h.add(concrete("C", bases=["A"]))
        h.add(concrete("C", bases=["B"]))  # re-register with new base
        assert h.descendants("A") == []
        assert h.descendants("B") == ["C"]

    def test_remove(self, paper_hierarchy):
        removed = paper_hierarchy.remove("POVray")
        assert removed is not None
        assert "POVray" not in paper_hierarchy
        # JPOVray still reaches Imaging through its direct base edge
        assert "Imaging" in paper_hierarchy.ancestors("JPOVray")

    def test_require_raises(self):
        with pytest.raises(TypeNotFound):
            TypeHierarchy().require("ghost")


class TestCycles:
    def test_direct_cycle_rejected(self):
        h = TypeHierarchy()
        h.add(abstract("A", bases=["B"]))
        with pytest.raises(CycleInHierarchy):
            h.add(abstract("B", bases=["A"]))
        # the rejected type was rolled back entirely
        assert "B" not in h
        assert h.descendants("A") == []

    def test_long_cycle_rejected(self):
        h = TypeHierarchy()
        h.add(abstract("A", bases=["C"]))
        h.add(abstract("B", bases=["A"]))
        with pytest.raises(CycleInHierarchy):
            h.add(abstract("C", bases=["B"]))

    def test_rollback_restores_previous_version(self):
        h = TypeHierarchy()
        h.add(abstract("A"))
        h.add(abstract("B", bases=["A"]))
        with pytest.raises(CycleInHierarchy):
            h.add(abstract("A", bases=["B"]))  # would create a cycle
        # the original A (no bases) is still in place
        assert h.get("A").base_types == []
        assert h.descendants("A") == ["B"]

    def test_diamond_is_fine(self):
        h = TypeHierarchy()
        h.add(abstract("Top"))
        h.add(abstract("L", bases=["Top"]))
        h.add(abstract("R", bases=["Top"]))
        h.add(concrete("Bottom", bases=["L", "R"]))
        assert set(h.ancestors("Bottom")) == {"L", "R", "Top"}
        assert h.concrete_types_for("Top")[0].name == "Bottom"
        # no duplicates despite the diamond
        assert h.descendants("Top").count("Bottom") == 1
