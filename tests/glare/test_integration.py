"""End-to-end integration tests: the paper's Examples 2 and 3.

Register an activity type on one site, discover and on-demand deploy
it from another, through the full stack (RDM, registries, overlay,
GridFTP, handlers, GRAM).
"""

import pytest

from repro.apps import (
    get_application,
    publish_applications,
    register_application,
    register_base_hierarchy,
)
from repro.glare.model import ActivityDeployment
from repro.vo import build_vo


@pytest.fixture()
def vo():
    vo = build_vo(n_sites=4, seed=7, monitors=False)
    publish_applications(vo)
    vo.form_overlay()
    return vo


def deployments_from(wires):
    return [ActivityDeployment.from_xml(w["xml"]) for w in wires]


class TestRegistration:
    def test_register_type_example2(self, vo):
        result = vo.run_process(register_application(vo, "agrid01", "JPOVray"))
        assert result["registered"] == "JPOVray"
        assert vo.stack("agrid01").atr.find_type("JPOVray") is not None
        # registration is local only: other sites don't know it yet
        assert vo.stack("agrid02").atr.find_type("JPOVray") is None

    def test_register_hierarchy(self, vo):
        vo.run_process(register_base_hierarchy(vo, "agrid00"))
        atr = vo.stack("agrid00").atr
        assert "Imaging" in atr.hierarchy
        assert "POVray" in atr.hierarchy
        assert atr.hierarchy.ancestors("POVray") == ["ImageConversion", "Imaging"]


class TestOnDemandDeployment:
    def test_deploy_simple_app(self, vo):
        """Wien2k (no dependencies) deploys on demand from a remote site."""
        vo.run_process(register_application(vo, "agrid01", "Wien2k"))

        def client():
            wires = yield from vo.client_call("agrid02", "get_deployments",
                                              payload="Wien2k")
            return wires

        wires = vo.run_process(client())
        deployments = deployments_from(wires)
        assert len(deployments) == 2  # wien2k + lapw0
        names = {d.name for d in deployments}
        assert names == {"wien2k", "lapw0"}
        target = deployments[0].site
        # the executable really exists on the target site's filesystem
        fs = vo.stack(target).site.fs
        assert fs.get_file([d for d in deployments if d.name == "wien2k"][0].path).executable

    def test_deploy_resolves_dependencies(self, vo):
        """JPOVray pulls Java and Ant onto the target site first (paper §2.2)."""
        vo.run_process(register_base_hierarchy(vo, "agrid01"))
        for app in ("Java", "Ant", "JPOVray"):
            vo.run_process(register_application(vo, "agrid01", app))

        def client():
            wires = yield from vo.client_call("agrid03", "get_deployments",
                                              payload="JPOVray")
            return wires

        wires = vo.run_process(client())
        deployments = deployments_from(wires)
        names = {d.name for d in deployments}
        assert "jpovray" in names
        assert "WS-JPOVray" in names
        kinds = {d.name: d.kind.value for d in deployments}
        assert kinds["jpovray"] == "executable"
        assert kinds["WS-JPOVray"] == "service"
        # dependencies were installed on the same target site
        target = deployments[0].site
        target_adr = vo.stack(target).adr
        assert target_adr.local_deployments_for("Java")
        assert target_adr.local_deployments_for("Ant")

    def test_abstract_type_resolves_to_concrete(self, vo):
        """Asking for ImageConversion (abstract) deploys JPOVray."""
        vo.run_process(register_base_hierarchy(vo, "agrid01"))
        for app in ("Java", "Ant", "JPOVray"):
            vo.run_process(register_application(vo, "agrid01", app))

        def client():
            wires = yield from vo.client_call("agrid01", "get_deployments",
                                              payload="ImageConversion")
            return wires

        deployments = deployments_from(vo.run_process(client()))
        assert any(d.type_name == "JPOVray" for d in deployments)

    def test_second_request_hits_cache(self, vo):
        vo.run_process(register_application(vo, "agrid01", "Wien2k"))

        def client():
            yield from vo.client_call("agrid02", "get_deployments", payload="Wien2k")
            t0 = vo.sim.now
            yield from vo.client_call("agrid02", "get_deployments", payload="Wien2k")
            return vo.sim.now - t0

        second_duration = vo.run_process(client())
        # second resolution is served from the local cache: milliseconds,
        # not the seconds an installation takes
        assert second_duration < 1.0

    def test_unknown_type_raises(self, vo):
        from repro.glare.errors import TypeNotFound

        def client():
            try:
                yield from vo.client_call("agrid02", "get_deployments",
                                          payload="NoSuchApp")
            except TypeNotFound:
                return "not-found"
            return "found"

        assert vo.run_process(client()) == "not-found"


class TestInstantiation:
    def test_instantiate_executable(self, vo):
        vo.run_process(register_application(vo, "agrid01", "Wien2k"))

        def client():
            wires = yield from vo.client_call("agrid02", "get_deployments",
                                              payload="Wien2k")
            deployment = ActivityDeployment.from_xml(wires[0]["xml"])
            result = yield from vo.network.call(
                "agrid02", deployment.site, "glare-rdm", "instantiate",
                payload={"key": deployment.key, "demand": 3.0},
            )
            return result, deployment

        result, deployment = vo.run_process(client())
        assert result["exit_code"] == 0
        assert result["duration"] >= 3.0
        # metrics were recorded by the status update
        target_adr = vo.stack(deployment.site).adr
        stored = target_adr.deployments[deployment.key]
        assert stored.last_return_code == 0
        assert stored.last_execution_time == pytest.approx(result["duration"])
