"""Unit tests for lifecycle control: expiry cascade, limits (paper §3.3)."""

import pytest

from repro.glare.lifecycle import LifecycleController
from repro.glare.model import ActivityDeployment, DeploymentKind, DeploymentStatus
from repro.vo import build_vo

TYPE_XML = (
    '<ActivityTypeEntry name="Ephemeral" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


def make_vo():
    vo = build_vo(n_sites=2, seed=81, monitors=False, lifecycle=False)
    vo.form_overlay()
    return vo


def register(vo, site="agrid01", dep_name="eph"):
    vo.run_process(vo.client_call(site, "register_type",
                                  payload={"xml": TYPE_XML}))
    deployment = ActivityDeployment(
        name=dep_name, type_name="Ephemeral", kind=DeploymentKind.EXECUTABLE,
        site=site, path=f"/opt/deployments/eph/bin/{dep_name}",
        status=DeploymentStatus.ACTIVE,
    )
    vo.run_process(vo.client_call(
        site, "register_deployment",
        payload={"xml": deployment.to_xml().to_string()},
    ))
    return deployment


class TestExpiryCascade:
    def test_type_expiry_removes_deployments(self):
        vo = make_vo()
        deployment = register(vo)
        controller = LifecycleController(vo.rdm("agrid01"), sweep_interval=5.0)
        controller.start()
        controller.expire_type_at("Ephemeral", vo.sim.now + 20.0)
        vo.sim.run(until=vo.sim.now + 40)
        atr = vo.stack("agrid01").atr
        adr = vo.stack("agrid01").adr
        assert atr.find_type("Ephemeral") is None
        assert deployment.key not in adr.deployments
        assert controller.cascaded_expiries == 1

    def test_deployment_expiry_leaves_type(self):
        vo = make_vo()
        deployment = register(vo)
        controller = LifecycleController(vo.rdm("agrid01"), sweep_interval=5.0)
        controller.start()
        controller.expire_deployment_at(deployment.key, vo.sim.now + 10.0)
        vo.sim.run(until=vo.sim.now + 30)
        assert vo.stack("agrid01").atr.find_type("Ephemeral") is not None
        assert deployment.key not in vo.stack("agrid01").adr.deployments

    def test_revoke_type_is_immediate(self):
        vo = make_vo()
        deployment = register(vo)
        controller = LifecycleController(vo.rdm("agrid01"))
        controller.revoke_type("Ephemeral", until=vo.sim.now + 1000)
        assert vo.stack("agrid01").atr.find_type("Ephemeral") is None
        assert deployment.key not in vo.stack("agrid01").adr.deployments

    def test_expire_unknown_type_raises(self):
        vo = make_vo()
        controller = LifecycleController(vo.rdm("agrid01"))
        with pytest.raises(KeyError):
            controller.expire_type_at("Ghost", 100.0)

    def test_no_expiry_without_termination_time(self):
        vo = make_vo()
        deployment = register(vo)
        controller = LifecycleController(vo.rdm("agrid01"), sweep_interval=5.0)
        controller.start()
        vo.sim.run(until=vo.sim.now + 200)
        assert vo.stack("agrid01").atr.find_type("Ephemeral") is not None
        assert deployment.key in vo.stack("agrid01").adr.deployments


class TestMinimumDeployments:
    def test_minimum_repair_reinstalls(self):
        from repro.apps import get_application, publish_applications

        vo = build_vo(n_sites=3, seed=83, monitors=False, lifecycle=False)
        publish_applications(vo, ["Wien2k"])
        vo.form_overlay()
        spec = get_application("Wien2k")
        # register with a minimum of one deployment
        xml = spec.type_xml.replace(
            "</ActivityTypeEntry>",
            '<DeploymentLimits min="1"/></ActivityTypeEntry>')
        vo.run_process(vo.client_call("agrid01", "register_type",
                                      payload={"xml": xml}))
        controller = LifecycleController(
            vo.rdm("agrid01"), min_check_interval=30.0, ensure_minimums=True)
        controller.start()
        vo.sim.run(until=vo.sim.now + 120)
        # the minimum-maintenance loop installed Wien2k somewhere
        assert controller.minimum_repairs >= 1
        adr = vo.stack("agrid01").adr
        assert len(adr.all_deployments_for("Wien2k")) >= 1
