"""Edge cases across the GLARE stack that the main suites skim over."""

import pytest

from repro.invariants import check_vo_invariants
from repro.vo import build_vo

TYPE_XML = (
    '<ActivityTypeEntry name="EdgeApp" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


class TestKnownSites:
    def test_falls_back_to_overlay_when_community_down(self):
        vo = build_vo(n_sites=4, seed=351, monitors=False)
        vo.form_overlay()
        vo.stack(vo.community_site).site.fail()
        rdm = vo.rdm("agrid01")
        names = vo.run_process(rdm.known_sites())
        # the overlay view still names this site's group + super group
        assert "agrid01" in names
        assert len(names) >= 2

    def test_uses_community_membership_when_up(self):
        vo = build_vo(n_sites=5, seed=353, monitors=False)
        vo.form_overlay()
        names = vo.run_process(vo.rdm("agrid02").known_sites())
        assert sorted(names) == sorted(vo.site_names)


class TestInvariantCorruptionDetection:
    def test_overlay_role_mismatch_detected(self):
        vo = build_vo(n_sites=4, seed=357, monitors=False)
        vo.form_overlay()
        assert check_vo_invariants(vo) == []
        # plant: a super-peer whose view points elsewhere
        some_sp = vo.super_peers()[0]
        vo.rdm(some_sp).overlay.view.super_peer = "agrid-bogus"
        violations = check_vo_invariants(vo, check_files=False)
        assert violations  # role/member mismatches reported

    def test_cached_resource_without_source_detected(self):
        vo = build_vo(n_sites=3, seed=359, monitors=False)
        vo.form_overlay()
        vo.run_process(vo.client_call("agrid01", "register_type",
                                      payload={"xml": TYPE_XML}))
        wire = vo.run_process(vo.client_call("agrid02", "lookup_type",
                                             payload="EdgeApp"))
        assert wire is not None
        atr2 = vo.stack("agrid02").atr
        assert "EdgeApp" in atr2.cache.keys()
        atr2.cache_sources.pop("EdgeApp")
        violations = check_vo_invariants(vo, check_files=False)
        assert any("no source" in v for v in violations)


class TestIndexMonitorWithoutIndex:
    def test_tick_skips_missing_index_service(self):
        """A node without an MDS index (e.g. origin) must not crash."""
        from repro.glare.monitors import IndexMonitor

        vo = build_vo(n_sites=2, seed=361, monitors=False)
        rdm = vo.rdm("agrid01")
        vo.network.node("agrid01").services.pop("mds-index")
        monitor = IndexMonitor(rdm, interval=10.0)
        monitor.start()
        vo.sim.run(until=50)
        assert monitor.cycles >= 4  # ticked repeatedly without error


class TestOfflineRdmBehaviour:
    def test_monitor_pauses_while_site_offline(self):
        from repro.glare.monitors import DeploymentStatusMonitor

        vo = build_vo(n_sites=2, seed=367, monitors=False)
        rdm = vo.rdm("agrid01")
        monitor = DeploymentStatusMonitor(rdm, interval=10.0)
        monitor.start()
        vo.stack("agrid01").site.fail()
        vo.sim.run(until=100)
        cycles_while_down = monitor.cycles
        vo.stack("agrid01").site.recover()
        vo.sim.run(until=200)
        assert monitor.cycles > cycles_while_down

    def test_offline_rdm_refuses_client_calls(self):
        from repro.simkernel.errors import OfflineError

        vo = build_vo(n_sites=2, seed=373, monitors=False)
        vo.stack("agrid01").site.fail()

        def client():
            try:
                yield from vo.network.call("agrid00", "agrid01", "glare-rdm",
                                           "ping")
            except OfflineError:
                return "offline"

        assert vo.run_process(client()) == "offline"


class TestGroupSizeExtremes:
    def test_group_size_two(self):
        vo = build_vo(n_sites=6, seed=379, monitors=False, group_size=2)
        groups = vo.form_overlay()
        assert len(groups) == 3
        assert all(len(m) == 2 for m in groups.values())

    def test_group_size_larger_than_vo(self):
        vo = build_vo(n_sites=3, seed=383, monitors=False, group_size=50)
        groups = vo.form_overlay()
        assert len(groups) == 1
        (members,) = groups.values()
        assert sorted(members) == sorted(vo.site_names)
