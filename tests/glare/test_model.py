"""Unit tests for the GLARE data model (types, deployments, XML)."""

import pytest

from repro.glare.errors import InvalidTypeDescription
from repro.glare.model import (
    ActivityDeployment,
    ActivityFunction,
    ActivityType,
    DeploymentKind,
    DeploymentStatus,
    InstallationSpec,
    TypeKind,
)


def make_concrete(name="JPOVray", **kwargs):
    installation = kwargs.pop("installation", InstallationSpec(
        mode="on-demand",
        constraints={"platform": "Intel", "os": "Linux"},
        deploy_file_url="http://x/jpovray.build",
        dependencies=["Java", "Ant"],
    ))
    return ActivityType(
        name=name,
        kind=TypeKind.CONCRETE,
        base_types=["POVray", "Imaging"],
        domain="imaging",
        functions=[ActivityFunction("render", ["scene"], ["image"])],
        benchmarks={"Intel": 1.5},
        installation=installation,
        deployment_names=["jpovray", "WS-JPOVray"],
        **kwargs,
    )


class TestActivityType:
    def test_xml_roundtrip(self):
        original = make_concrete()
        parsed = ActivityType.from_xml(original.to_xml())
        assert parsed.name == original.name
        assert parsed.kind == TypeKind.CONCRETE
        assert parsed.base_types == original.base_types
        assert parsed.domain == "imaging"
        assert [f.name for f in parsed.functions] == ["render"]
        assert parsed.functions[0].inputs == ["scene"]
        assert parsed.benchmarks == {"Intel": 1.5}
        assert parsed.installation.dependencies == ["Java", "Ant"]
        assert parsed.installation.constraints["platform"] == "Intel"
        assert parsed.deployment_names == ["jpovray", "WS-JPOVray"]

    def test_abstract_type_roundtrip(self):
        original = ActivityType(name="Imaging", kind=TypeKind.ABSTRACT,
                                domain="imaging")
        parsed = ActivityType.from_xml(original.to_xml())
        assert parsed.kind == TypeKind.ABSTRACT
        assert parsed.installation is None
        assert not parsed.installable

    def test_kind_inferred_from_installation(self):
        """Paper Fig. 9 omits the kind attribute."""
        xml = (
            '<ActivityTypeEntry name="POVray" type="Imaging">'
            '<Installation mode="on-demand">'
            '<DeployFile url="http://x/p.build"/></Installation>'
            "</ActivityTypeEntry>"
        )
        at = ActivityType.from_xml(xml)
        assert at.kind == TypeKind.CONCRETE
        assert "Imaging" in at.base_types  # `type` attr shorthand

    def test_installable_requires_on_demand_and_deployfile(self):
        at = make_concrete()
        assert at.installable
        manual = make_concrete(installation=InstallationSpec(
            mode="manual", deploy_file_url="http://x/y.build"))
        assert not manual.installable
        no_file = make_concrete(installation=InstallationSpec(mode="on-demand"))
        assert not no_file.installable

    def test_abstract_with_installation_rejected(self):
        with pytest.raises(InvalidTypeDescription):
            ActivityType(name="Bad", kind=TypeKind.ABSTRACT,
                         installation=InstallationSpec())

    def test_self_extension_rejected(self):
        with pytest.raises(InvalidTypeDescription):
            ActivityType(name="X", base_types=["X"])

    def test_deployment_limits_roundtrip(self):
        at = make_concrete(min_deployments=1, max_deployments=3)
        parsed = ActivityType.from_xml(at.to_xml())
        assert parsed.min_deployments == 1
        assert parsed.max_deployments == 3

    def test_bad_limits_rejected(self):
        with pytest.raises(InvalidTypeDescription):
            make_concrete(min_deployments=5, max_deployments=2)

    def test_unknown_installation_mode_rejected(self):
        with pytest.raises(InvalidTypeDescription):
            InstallationSpec(mode="sometimes")

    def test_wrong_root_tag_rejected(self):
        with pytest.raises(InvalidTypeDescription):
            ActivityType.from_xml("<NotAType name='x'/>")


class TestActivityDeployment:
    def test_executable_roundtrip(self):
        original = ActivityDeployment(
            name="jpovray", type_name="JPOVray",
            kind=DeploymentKind.EXECUTABLE, site="agrid03",
            path="/opt/deployments/jpovray/bin/jpovray",
            home="/opt/deployments/jpovray",
            status=DeploymentStatus.ACTIVE,
            last_execution_time=12.5, last_return_code=0,
            environment={"JPOVRAY_HOME": "/opt/deployments/jpovray"},
        )
        parsed = ActivityDeployment.from_xml(original.to_xml())
        assert parsed.key == "agrid03:jpovray"
        assert parsed.kind == DeploymentKind.EXECUTABLE
        assert parsed.path == original.path
        assert parsed.status == DeploymentStatus.ACTIVE
        assert parsed.last_execution_time == pytest.approx(12.5)
        assert parsed.last_return_code == 0
        assert parsed.environment["JPOVRAY_HOME"] == "/opt/deployments/jpovray"

    def test_service_roundtrip(self):
        original = ActivityDeployment(
            name="WS-JPOVray", type_name="JPOVray",
            kind=DeploymentKind.SERVICE, site="agrid03",
            endpoint="https://agrid03/wsrf/services/WS-JPOVray",
        )
        parsed = ActivityDeployment.from_xml(original.to_xml())
        assert parsed.kind == DeploymentKind.SERVICE
        assert parsed.endpoint.startswith("https://")
        assert parsed.status == DeploymentStatus.PENDING
        assert not parsed.usable

    def test_executable_needs_path(self):
        with pytest.raises(InvalidTypeDescription):
            ActivityDeployment(name="x", type_name="T",
                               kind=DeploymentKind.EXECUTABLE, site="s")

    def test_service_needs_endpoint(self):
        with pytest.raises(InvalidTypeDescription):
            ActivityDeployment(name="x", type_name="T",
                               kind=DeploymentKind.SERVICE, site="s")

    def test_key_unique_per_site(self):
        d1 = ActivityDeployment(name="app", type_name="T",
                                kind=DeploymentKind.EXECUTABLE,
                                site="a", path="/x")
        d2 = ActivityDeployment(name="app", type_name="T",
                                kind=DeploymentKind.EXECUTABLE,
                                site="b", path="/x")
        assert d1.key != d2.key


class TestActivityFunction:
    def test_roundtrip(self):
        original = ActivityFunction("render", ["scene", "options"], ["image"])
        parsed = ActivityFunction.from_xml(original.to_xml())
        assert parsed.name == "render"
        assert parsed.inputs == ["scene", "options"]
        assert parsed.outputs == ["image"]
