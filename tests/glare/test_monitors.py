"""Unit tests for the RDM background monitors (paper §3.2/§3.3)."""

import pytest

from repro.glare.model import (
    ActivityDeployment,
    ActivityType,
    DeploymentKind,
    DeploymentStatus,
)
from repro.glare.monitors import CacheRefresher, DeploymentStatusMonitor, IndexMonitor
from repro.vo import build_vo

TYPE_XML = (
    '<ActivityTypeEntry name="MonApp" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


def make_vo(**kwargs):
    kwargs.setdefault("n_sites", 3)
    kwargs.setdefault("seed", 71)
    kwargs.setdefault("monitors", False)
    vo = build_vo(**kwargs)
    vo.form_overlay()
    return vo


def register_type_and_deployment(vo, site, name="monapp", path=None):
    vo.run_process(vo.client_call(site, "register_type",
                                  payload={"xml": TYPE_XML}))
    deployment = ActivityDeployment(
        name=name, type_name="MonApp", kind=DeploymentKind.EXECUTABLE,
        site=site, path=path or f"/opt/deployments/monapp/bin/{name}",
        status=DeploymentStatus.ACTIVE,
    )
    vo.run_process(vo.client_call(
        site, "register_deployment",
        payload={"xml": deployment.to_xml().to_string()},
    ))
    return deployment


class TestDeploymentStatusMonitor:
    def test_missing_executable_flagged_failed(self):
        vo = make_vo()
        deployment = register_type_and_deployment(vo, "agrid01")
        # the executable was never actually installed on disk
        monitor = DeploymentStatusMonitor(vo.rdm("agrid01"), interval=10.0)
        monitor.start()
        vo.sim.run(until=vo.sim.now + 30)
        stored = vo.stack("agrid01").adr.deployments[deployment.key]
        assert stored.status == DeploymentStatus.FAILED
        assert monitor.failures_detected >= 1

    def test_present_executable_stays_active_and_lut_refreshes(self):
        vo = make_vo()
        deployment = register_type_and_deployment(vo, "agrid01")
        vo.stack("agrid01").site.fs.put_file(
            deployment.path, size=1000, executable=True)
        adr = vo.stack("agrid01").adr
        lut_before = adr.home.lookup(deployment.key).last_update_time
        monitor = DeploymentStatusMonitor(vo.rdm("agrid01"), interval=10.0)
        monitor.start()
        vo.sim.run(until=vo.sim.now + 30)
        stored = adr.deployments[deployment.key]
        assert stored.status == DeploymentStatus.ACTIVE
        assert adr.home.lookup(deployment.key).last_update_time > lut_before

    def test_service_deployments_not_checked_on_disk(self):
        vo = make_vo()
        vo.run_process(vo.client_call("agrid01", "register_type",
                                      payload={"xml": TYPE_XML}))
        service_dep = ActivityDeployment(
            name="WS-MonApp", type_name="MonApp", kind=DeploymentKind.SERVICE,
            site="agrid01", endpoint="https://agrid01/wsrf/services/WS-MonApp",
            status=DeploymentStatus.ACTIVE,
        )
        vo.run_process(vo.client_call(
            "agrid01", "register_deployment",
            payload={"xml": service_dep.to_xml().to_string()},
        ))
        monitor = DeploymentStatusMonitor(vo.rdm("agrid01"), interval=10.0)
        monitor.start()
        vo.sim.run(until=vo.sim.now + 30)
        stored = vo.stack("agrid01").adr.deployments[service_dep.key]
        assert stored.status == DeploymentStatus.ACTIVE


class TestCacheRefresher:
    def setup_cached_copy(self, vo):
        """agrid02 resolves (and caches) a type+deployment from agrid01."""
        deployment = register_type_and_deployment(vo, "agrid01")
        vo.stack("agrid01").site.fs.put_file(
            deployment.path, size=1000, executable=True)
        vo.run_process(vo.client_call(
            "agrid02", "get_deployments",
            payload={"type": "MonApp", "auto_deploy": False},
        ))
        adr2 = vo.stack("agrid02").adr
        assert deployment.key in adr2.cached_deployments
        return deployment

    def test_source_update_propagates(self):
        vo = make_vo()
        deployment = self.setup_cached_copy(vo)
        # the source updates the deployment's metrics (LUT bumps)
        vo.sim.run(until=vo.sim.now + 5)
        vo.run_process(vo.client_call(
            "agrid01", "update_status",
            payload={"key": deployment.key, "status": "failed"},
            service="activity-deployment-registry",
        ))
        refresher = CacheRefresher(vo.rdm("agrid02"), interval=15.0)
        refresher.start()
        vo.sim.run(until=vo.sim.now + 40)
        cached = vo.stack("agrid02").adr.cached_deployments[deployment.key]
        assert cached.status == DeploymentStatus.FAILED
        assert refresher.refreshed >= 1

    def test_vanished_source_resource_discarded(self):
        vo = make_vo()
        deployment = self.setup_cached_copy(vo)
        vo.run_process(vo.client_call(
            "agrid01", "remove_deployment", payload=deployment.key,
            service="activity-deployment-registry",
        ))
        refresher = CacheRefresher(vo.rdm("agrid02"), interval=15.0)
        refresher.start()
        vo.sim.run(until=vo.sim.now + 40)
        assert deployment.key not in vo.stack("agrid02").adr.cached_deployments
        assert refresher.discarded >= 1

    def test_unreachable_source_keeps_copy(self):
        """A transiently offline source doesn't evict the cache."""
        vo = make_vo()
        deployment = self.setup_cached_copy(vo)
        vo.stack("agrid01").site.fail()
        refresher = CacheRefresher(vo.rdm("agrid02"), interval=15.0)
        refresher.start()
        vo.sim.run(until=vo.sim.now + 40)
        assert deployment.key in vo.stack("agrid02").adr.cached_deployments


class TestIndexMonitor:
    def test_community_membership_change_triggers_election(self):
        vo = make_vo(n_sites=4)
        coordinator = vo.rdm(vo.community_site)
        elections_before = coordinator.overlay.elections_run
        monitor = IndexMonitor(coordinator, interval=15.0)
        monitor.start()
        vo.sim.run(until=vo.sim.now + 40)
        # first tick: membership differs from the monitor's empty state
        assert coordinator.overlay.elections_run > elections_before
        runs_after_first = coordinator.overlay.elections_run
        vo.sim.run(until=vo.sim.now + 60)
        # stable membership: no further elections
        assert coordinator.overlay.elections_run == runs_after_first

    def test_non_community_site_never_coordinates(self):
        vo = make_vo(n_sites=3)
        plain = vo.rdm("agrid01")
        monitor = IndexMonitor(plain, interval=15.0)
        monitor.start()
        before = plain.overlay.elections_run
        vo.sim.run(until=vo.sim.now + 60)
        assert plain.overlay.elections_run == before
