"""Unit tests for the Deployment Manager (on-demand provisioning)."""

import pytest

from repro.apps import get_application, publish_applications
from repro.glare.errors import ConstraintViolation, DeploymentFailed
from repro.glare.model import ActivityDeployment, ActivityType
from repro.vo import VOConfig, build_vo

MANUAL_TYPE_XML = (
    '<ActivityTypeEntry name="ManualApp" kind="concrete">'
    "<Domain>x</Domain>"
    '<Installation mode="manual">'
    '<DeployFile url="http://x/manual.build"/></Installation>'
    "</ActivityTypeEntry>"
)

PICKY_TYPE_XML = (
    '<ActivityTypeEntry name="PickyApp" kind="concrete">'
    "<Domain>x</Domain>"
    '<Installation mode="on-demand">'
    "<Constraints><os>Solaris</os></Constraints>"
    '<DeployFile url="http://x/picky.build"/></Installation>'
    "</ActivityTypeEntry>"
)


def make_vo(**kwargs):
    kwargs.setdefault("n_sites", 4)
    kwargs.setdefault("seed", 101)
    kwargs.setdefault("monitors", False)
    vo = build_vo(**kwargs)
    publish_applications(vo)
    vo.form_overlay()
    return vo


class TestConstraints:
    def test_manual_mode_notifies_instead_of_installing(self):
        vo = make_vo()
        rdm = vo.rdm("agrid01")
        at = ActivityType.from_xml(MANUAL_TYPE_XML)

        def run():
            try:
                yield from rdm.deployment_manager.deploy_on_demand(at)
            except DeploymentFailed as error:
                return str(error)

        message = vo.run_process(run())
        assert "administrator notified" in message
        assert rdm.admin_notifications
        assert rdm.admin_notifications[0]["reason"].startswith("manual")

    def test_unsatisfiable_constraints_raise(self):
        vo = make_vo()
        rdm = vo.rdm("agrid01")
        at = ActivityType.from_xml(PICKY_TYPE_XML)

        def run():
            try:
                yield from rdm.deployment_manager.deploy_on_demand(at)
            except ConstraintViolation:
                return "violated"

        assert vo.run_process(run()) == "violated"

    def test_constraint_matching_selects_special_site(self):
        """Only the site advertising the custom attribute qualifies."""
        config = VOConfig(
            n_sites=4, seed=103, monitors=False,
            extra_site_attrs={"agrid02": {"mpi": "openmpi"}},
        )
        vo = build_vo(config)
        publish_applications(vo)
        vo.form_overlay()
        spec = get_application("Wien2k")
        xml = spec.type_xml.replace(
            "<arch>32bit</arch>", "<arch>32bit</arch><mpi>openmpi</mpi>")
        at = ActivityType.from_xml(xml)
        rdm = vo.rdm("agrid01")

        def run():
            wires = yield from rdm.deployment_manager.deploy_on_demand(at)
            return wires

        wires = vo.run_process(run())
        sites = {ActivityDeployment.from_xml(w["xml"]).site for w in wires}
        assert sites == {"agrid02"}


class TestFailureRelocation:
    def test_offline_candidate_skipped(self):
        """An offline site never becomes an installation target."""
        vo = make_vo(seed=107)
        spec = get_application("Wien2k")
        at = ActivityType.from_xml(spec.type_xml)
        rdm = vo.rdm("agrid01")

        def candidates():
            names = yield from rdm.deployment_manager._candidate_sites(
                at.installation.constraints, None)
            return names

        first = vo.run_process(candidates())[0]
        vo.stack(first).site.fail()

        def run():
            wires = yield from rdm.deployment_manager.deploy_on_demand(at)
            return wires

        wires = vo.run_process(run())
        sites = {ActivityDeployment.from_xml(w["xml"]).site for w in wires}
        assert first not in sites
        assert rdm.deployment_manager.stats.installs_succeeded == 1

    def test_moves_to_another_site_when_install_fails(self):
        """'If a deployment fails on one site, it can be moved to another.'"""
        vo = make_vo(seed=107)
        spec = get_application("Wien2k")
        at = ActivityType.from_xml(spec.type_xml)
        rdm = vo.rdm("agrid01")

        def candidates():
            names = yield from rdm.deployment_manager._candidate_sites(
                at.installation.constraints, None)
            return names

        first = vo.run_process(candidates())[0]

        # inject a target-side installation failure (disk full) on the
        # first candidate's RDM
        def failing_deploy(message):
            raise DeploymentFailed("disk full on " + first)
            yield  # pragma: no cover - generator marker

        vo.rdm(first).op_deploy = failing_deploy

        def run():
            wires = yield from rdm.deployment_manager.deploy_on_demand(at)
            return wires

        wires = vo.run_process(run())
        sites = {ActivityDeployment.from_xml(w["xml"]).site for w in wires}
        assert first not in sites
        assert rdm.deployment_manager.stats.installs_failed >= 1
        assert rdm.deployment_manager.stats.installs_succeeded == 1
        # the failing site's admin was notified about the failed attempt
        assert any(n["site"] == first for n in rdm.admin_notifications)

    def test_all_sites_failing_raises(self):
        vo = make_vo(seed=109)
        spec = get_application("Wien2k")
        at = ActivityType.from_xml(spec.type_xml)
        rdm = vo.rdm("agrid00")
        for name in vo.site_names:
            if name != "agrid00":
                vo.stack(name).site.fail()
        # the local site stays up but we exclude it explicitly
        def run():
            try:
                yield from rdm.deployment_manager.deploy_on_demand(
                    at, exclude_sites=("agrid00",))
            except (DeploymentFailed, ConstraintViolation) as error:
                return type(error).__name__

        assert vo.run_process(run()) in ("DeploymentFailed", "ConstraintViolation")


class TestDependencies:
    def test_dependency_already_present_not_reinstalled(self):
        vo = make_vo(seed=113)
        rdm = vo.rdm("agrid01")
        for app in ("Java", "Ant", "JPOVray"):
            spec = get_application(app)
            vo.run_process(vo.client_call(
                "agrid01", "register_type", payload={"xml": spec.type_xml}))

        at = ActivityType.from_xml(get_application("JPOVray").type_xml)

        def run():
            wires = yield from rdm.deployment_manager.deploy_on_demand(at)
            return wires

        wires = vo.run_process(run())
        target = ActivityDeployment.from_xml(wires[0]["xml"]).site
        deps_installed_first = rdm.deployment_manager.stats.dependencies_installed
        assert deps_installed_first == 2  # Java and Ant

        # deploying another Java-dependent app on the same site reuses it
        at_ant = ActivityType.from_xml(get_application("Ant").type_xml)

        def run_ant():
            wires = yield from rdm.deployment_manager.deploy_on_demand(
                at_ant, preferred_site=target)
            return wires

        vo.run_process(run_ant())
        assert (rdm.deployment_manager.stats.dependencies_installed
                == deps_installed_first)  # Java not reinstalled

    def test_unknown_dependency_fails(self):
        vo = make_vo(seed=117)
        rdm = vo.rdm("agrid01")
        xml = (
            '<ActivityTypeEntry name="NeedsGhost" kind="concrete">'
            "<Domain>x</Domain><Dependency>GhostDep</Dependency>"
            '<Installation mode="on-demand">'
            '<DeployFile url="http://x/ghost.build"/></Installation>'
            "</ActivityTypeEntry>"
        )
        vo.publish_deployfile("http://x/ghost.build",
                              '<Build name="g"><Step name="a" task="mkdir-p"/></Build>')
        at = ActivityType.from_xml(xml)

        def run():
            try:
                yield from rdm.deployment_manager.deploy_on_demand(at)
            except DeploymentFailed as error:
                return str(error)

        message = vo.run_process(run())
        assert "GhostDep" in message
