"""The scaled provisioning path: parallel probing, concurrent
dependencies, rollout, and replica-aware transfers.

Every switch lives on :class:`repro.glare.provisioning.ProvisioningConfig`
and defaults to off; these tests check each one both for its effect and
for result-equivalence with the serial baseline.
"""

import pytest

from repro.apps import (
    get_application,
    publish_applications,
    register_application,
)
from repro.glare.model import ActivityDeployment
from repro.glare.provisioning import ProvisioningConfig
from repro.gridftp import GridFtpService, TransferError, UrlCatalog
from repro.net import Network, Topology
from repro.simkernel import Simulator
from repro.site import GridSite, SiteDescription
from repro.vo import build_vo

URL = "http://www.povray.org/povlinux-3.6.tgz"


def make_vo(apps=("Wien2k",), register_at="agrid01", **kwargs):
    kwargs.setdefault("n_sites", 4)
    kwargs.setdefault("seed", 101)
    kwargs.setdefault("monitors", False)
    vo = build_vo(**kwargs)
    publish_applications(vo)
    vo.form_overlay()
    for app in apps:
        vo.run_process(register_application(vo, register_at, app))
    return vo


def holders(vo, type_name):
    return sorted(
        name for name in vo.site_names
        if vo.stack(name).adr.local_deployments_for(type_name)
    )


class TestConfig:
    def test_defaults_are_all_off(self):
        assert not ProvisioningConfig().any_enabled

    def test_all_on_enables_everything(self):
        config = ProvisioningConfig.all_on(rollout_fanout=4)
        assert config.any_enabled
        assert config.parallel_probe
        assert config.site_info_ttl > 0
        assert config.parallel_dependencies
        assert config.rollout_fanout == 4
        assert config.replica_transfers
        assert config.transfer_singleflight


class TestParallelProbe:
    def test_parallel_probe_selects_the_same_site(self):
        """Concurrent site_info probing must not change placement."""
        targets = {}
        for parallel in (False, True):
            vo = make_vo(provisioning=ProvisioningConfig(
                parallel_probe=True) if parallel else None)
            wires = vo.run_process(vo.client_call(
                "agrid02", "get_deployments", payload="Wien2k"
            ))
            targets[parallel] = sorted(
                ActivityDeployment.from_xml(w["xml"]).site for w in wires
            )
        assert targets[False] == targets[True]

    def test_parallel_probe_is_faster(self):
        elapsed = {}
        for parallel in (False, True):
            vo = make_vo(provisioning=ProvisioningConfig(
                parallel_probe=True) if parallel else None)
            rdm = vo.rdm("agrid02")
            from repro.glare.model import ActivityType

            constraints = ActivityType.from_xml(
                get_application("Wien2k").type_xml
            ).installation.constraints

            def probe():
                started = vo.sim.now
                yield from rdm.deployment_manager._candidate_sites(
                    constraints, None
                )
                return vo.sim.now - started

            elapsed[parallel] = vo.run_process(probe())
        assert elapsed[True] < elapsed[False]

    def test_ttl_cache_skips_reprobes(self):
        vo = make_vo(apps=("Wien2k", "Invmod"),
                     provisioning=ProvisioningConfig(site_info_ttl=300.0))
        manager = vo.rdm("agrid02").deployment_manager
        vo.run_process(vo.client_call("agrid02", "get_deployments",
                                      payload="Wien2k"))
        first_round = manager.probe_cache_hits
        vo.run_process(vo.client_call("agrid02", "get_deployments",
                                      payload="Invmod"))
        # the second deployment's candidate scan reuses every probe
        assert manager.probe_cache_hits > first_round
        assert manager.probe_cache_hits >= len(vo.site_names)

    def test_ttl_zero_never_caches(self):
        vo = make_vo(apps=("Wien2k", "Invmod"))
        manager = vo.rdm("agrid02").deployment_manager
        vo.run_process(vo.client_call("agrid02", "get_deployments",
                                      payload="Wien2k"))
        vo.run_process(vo.client_call("agrid02", "get_deployments",
                                      payload="Invmod"))
        assert manager.probe_cache_hits == 0
        assert manager._site_cache == {}


class TestParallelDependencies:
    APPS = ("Java", "Ant", "JPOVray")

    def _deploy_jpovray(self, parallel):
        provisioning = (
            ProvisioningConfig(parallel_dependencies=True) if parallel else None
        )
        vo = make_vo(apps=self.APPS, provisioning=provisioning)
        started = vo.sim.now
        wires = vo.run_process(vo.client_call(
            "agrid03", "get_deployments", payload="JPOVray"
        ))
        target = ActivityDeployment.from_xml(wires[0]["xml"]).site
        return vo, target, vo.sim.now - started

    def test_concurrent_dependencies_install_the_same_stack(self):
        results = {}
        for parallel in (False, True):
            vo, target, elapsed = self._deploy_jpovray(parallel)
            adr = vo.stack(target).adr
            assert adr.local_deployments_for("Java")
            assert adr.local_deployments_for("Ant")
            results[parallel] = (target, holders(vo, "Java"),
                                 holders(vo, "Ant"), elapsed)
        assert results[False][:3] == results[True][:3]
        # Java and Ant overlap instead of running back to back
        assert results[True][3] < results[False][3]

    def test_shared_transitive_dependency_installs_once(self):
        """Ant itself needs Java; the single-flight gate deduplicates."""
        vo, target, _ = self._deploy_jpovray(parallel=True)
        manager = vo.rdm("agrid03").deployment_manager
        # exactly three installations: JPOVray, Ant, and Java *once*,
        # even though both JPOVray and Ant depend on it concurrently
        assert manager.stats.installs_succeeded == 3
        assert vo.stack(target).adr.local_deployments_for("Java")


class TestRollout:
    def _rollout(self, vo, **payload_extra):
        spec = get_application("Wien2k")
        payload = {"type_xml": spec.type_xml}
        payload.update(payload_extra)
        return vo.run_process(vo.client_call(
            "agrid01", "rollout", payload=payload
        ))

    def test_serial_rollout_installs_on_every_candidate(self):
        vo = make_vo()
        result = self._rollout(vo)
        assert result["type"] == "Wien2k"
        statuses = {leg["site"]: leg["status"] for leg in result["results"]}
        assert set(statuses.values()) == {"installed"}
        assert holders(vo, "Wien2k") == sorted(statuses)

    def test_second_rollout_reports_present(self):
        vo = make_vo()
        self._rollout(vo)
        again = self._rollout(vo)
        assert all(leg["status"] == "present" for leg in again["results"])
        assert vo.rdm("agrid01").deployment_manager.stats.installs_attempted \
            == len(again["results"])

    def test_parallel_rollout_matches_serial_and_is_faster(self):
        outcomes = {}
        for fanout in (1, 4):
            vo = make_vo()
            started = vo.sim.now
            result = self._rollout(vo, fanout=fanout)
            legs = {
                leg["site"]: (leg["status"], sorted(
                    str(w["epr"]["key"]) for w in leg["deployments"]
                ))
                for leg in result["results"]
            }
            outcomes[fanout] = (legs, vo.sim.now - started)
        assert outcomes[1][0] == outcomes[4][0]
        assert outcomes[4][1] < outcomes[1][1]

    def test_rollout_legs_do_not_piggyback_each_other(self):
        """Same type, different targets: distinct placement keys."""
        vo = make_vo()
        self._rollout(vo, fanout=4)
        manager = vo.rdm("agrid01").deployment_manager
        assert manager.piggybacked == 0
        assert len(holders(vo, "Wien2k")) == len(vo.site_names)

    def test_explicit_targets_and_per_site_failure(self):
        vo = make_vo()
        vo.network.set_online("agrid03", False)
        result = self._rollout(vo, target_sites=["agrid02", "agrid03"])
        by_site = {leg["site"]: leg for leg in result["results"]}
        assert by_site["agrid02"]["status"] == "installed"
        assert by_site["agrid03"]["status"] == "failed"
        assert by_site["agrid03"]["error"]
        assert by_site["agrid03"]["deployments"] == []
        # a failed leg never aborts the rollout's other legs
        assert holders(vo, "Wien2k") == ["agrid02"]

    def test_manual_mode_refuses_rollout(self):
        from repro.glare.errors import DeploymentFailed
        from repro.glare.model import ActivityType

        vo = make_vo()
        xml = get_application("Wien2k").type_xml.replace(
            'mode="on-demand"', 'mode="manual"')

        def run():
            try:
                yield from vo.rdm("agrid01").deployment_manager.rollout(
                    ActivityType.from_xml(xml)
                )
            except DeploymentFailed:
                return "refused"

        assert vo.run_process(run()) == "refused"


def make_transfer_world(replica=True, singleflight=False):
    """Three sites where ``near`` is strictly closer to ``dst`` than
    ``origin`` is, so replica selection has an unambiguous best choice."""
    sim = Simulator(seed=7)
    topo = Topology()
    topo.add_link("dst", "near", latency=0.001, bandwidth=12.5e6)
    topo.add_link("dst", "origin", latency=0.050, bandwidth=12.5e6)
    topo.add_link("near", "origin", latency=0.050, bandwidth=12.5e6)
    net = Network(sim, topo)
    sites = {
        name: GridSite(net, SiteDescription(name=name))
        for name in ("dst", "near", "origin")
    }
    catalog = UrlCatalog()
    services = {
        name: GridFtpService(
            net, name, fs=site.fs, url_catalog=catalog,
            replica_transfers=replica, transfer_singleflight=singleflight,
        )
        for name, site in sites.items()
    }
    sites["origin"].fs.put_file("/www/app.tgz", size=4_000_000, md5sum="m")
    catalog.publish(URL, "origin", "/www/app.tgz")
    return sim, sites, services, catalog


def run(sim, gen):
    proc = sim.process(gen)
    sim.run()
    assert proc.ok, proc.value
    return proc.value


class TestReplicaTransfers:
    def test_verified_fetch_registers_replica(self):
        sim, sites, services, catalog = make_transfer_world()

        def client():
            yield from services["near"].fetch_url(URL, "/tmp/app.tgz",
                                                  expected_md5="m")

        run(sim, client())
        assert catalog.replicas[URL] == [("near", "/tmp/app.tgz")]
        assert catalog.locations(URL)[0] == ("origin", "/www/app.tgz")

    def test_second_fetch_pulls_from_nearest_replica(self):
        sim, sites, services, catalog = make_transfer_world()

        def seed_then_fetch():
            yield from services["near"].fetch_url(URL, "/tmp/app.tgz",
                                                  expected_md5="m")
            yield from services["dst"].fetch_url(URL, "/tmp/app.tgz",
                                                 expected_md5="m")

        run(sim, seed_then_fetch())
        assert services["dst"].replica_hits == 1
        assert services["dst"].transfers[-1].source == "near"
        assert sites["dst"].fs.get_file("/tmp/app.tgz").size == 4_000_000

    def test_stale_replica_falls_back_to_origin(self):
        sim, sites, services, catalog = make_transfer_world()
        # a replica whose file no longer exists: the fetch must recover
        catalog.add_replica(URL, "near", "/tmp/vanished.tgz")

        def client():
            entry = yield from services["dst"].fetch_url(URL, "/tmp/app.tgz",
                                                         expected_md5="m")
            return entry

        entry = run(sim, client())
        assert entry.size == 4_000_000
        assert services["dst"].transfers[-1].source == "origin"
        # the dead replica was evicted; dst registered itself instead
        assert catalog.replicas[URL] == [("dst", "/tmp/app.tgz")]

    def test_offline_replica_is_skipped(self):
        sim, sites, services, catalog = make_transfer_world()
        catalog.add_replica(URL, "near", "/tmp/app.tgz")
        sim_net = services["dst"].network
        sim_net.set_online("near", False)

        def client():
            yield from services["dst"].fetch_url(URL, "/tmp/app.tgz",
                                                 expected_md5="m")

        run(sim, client())
        assert services["dst"].replica_hits == 0
        assert services["dst"].transfers[-1].source == "origin"

    def test_replicas_off_always_hits_origin(self):
        sim, sites, services, catalog = make_transfer_world(replica=False)
        catalog.add_replica(URL, "near", "/tmp/app.tgz")

        def client():
            yield from services["dst"].fetch_url(URL, "/tmp/app.tgz")

        run(sim, client())
        assert services["dst"].replica_hits == 0
        assert services["dst"].transfers[-1].source == "origin"


class TestTransferSingleflight:
    def test_concurrent_fetches_share_one_download(self):
        sim, sites, services, catalog = make_transfer_world(
            replica=False, singleflight=True)
        gridftp = services["dst"]

        def client(index):
            yield from gridftp.fetch_url(URL, f"/tmp/copy{index}.tgz")

        for index in range(3):
            sim.process(client(index))
        sim.run()
        assert gridftp.url_singleflight_joined == 2
        # one wide-area pull; the followers copied the leader's file
        wide_area = [t for t in gridftp.transfers if t.source == "origin"]
        assert len(wide_area) == 1
        for index in range(3):
            assert sites["dst"].fs.get_file(f"/tmp/copy{index}.tgz").size \
                == 4_000_000
        assert gridftp._inflight_urls == {}

    def test_failed_leader_is_not_shared(self):
        sim, sites, services, catalog = make_transfer_world(
            replica=False, singleflight=True)
        gridftp = services["dst"]
        sites["origin"].fs.remove_file("/www/app.tgz")
        failures = []

        def client(index):
            try:
                yield from gridftp.fetch_url(URL, f"/tmp/copy{index}.tgz")
            except TransferError:
                failures.append(index)

        for index in range(2):
            sim.process(client(index))
        sim.run()
        # the follower joined, saw the leader fail, retried on its own
        assert gridftp.url_singleflight_joined == 1
        assert sorted(failures) == [0, 1]
        assert gridftp._inflight_urls == {}
