"""Operation-level tests for the RDM service's protocol semantics."""

import pytest

from repro.apps import get_application, publish_applications
from repro.glare.errors import DeploymentNotFound
from repro.glare.model import ActivityDeployment, DeploymentKind, DeploymentStatus
from repro.vo import build_vo

TYPE_XML = (
    '<ActivityTypeEntry name="OpApp" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


def make_vo(n_sites=6, group_size=3, seed=241, **kw):
    vo = build_vo(n_sites=n_sites, seed=seed, group_size=group_size,
                  monitors=False, **kw)
    vo.form_overlay()
    return vo


def register_with_deployment(vo, site, name="opapp"):
    vo.run_process(vo.client_call(site, "register_type",
                                  payload={"xml": TYPE_XML}))
    deployment = ActivityDeployment(
        name=name, type_name="OpApp", kind=DeploymentKind.EXECUTABLE,
        site=site, path=f"/opt/deployments/opapp/bin/{name}",
        status=DeploymentStatus.ACTIVE,
    )
    vo.stack(site).site.fs.put_file(deployment.path, size=100, executable=True)
    vo.run_process(vo.client_call(
        site, "register_deployment",
        payload={"xml": deployment.to_xml().to_string()},
    ))
    return deployment


class TestSpLookupSemantics:
    def test_forwarded_request_not_reforwarded(self):
        """Loop prevention: a forwarded sp_lookup stays in the group."""
        vo = make_vo()
        sp = vo.super_peers()[0]
        other_sps = [s for s in vo.super_peers() if s != sp]
        messages_before = {
            s: vo.network.node(s).messages_in for s in other_sps
        }
        vo.run_process(vo.network.call(
            "agrid01", sp, "glare-rdm", "sp_lookup",
            payload={"type": "GhostType", "forwarded": True},
        ))
        # no other super-peer was contacted for a forwarded request
        for s in other_sps:
            assert vo.network.node(s).messages_in == messages_before[s]

    def test_unforwarded_request_reaches_super_group(self):
        vo = make_vo()
        sp = vo.super_peers()[0]
        other_sps = [s for s in vo.super_peers() if s != sp]
        messages_before = {
            s: vo.network.node(s).messages_in for s in other_sps
        }
        vo.run_process(vo.network.call(
            "agrid01", sp, "glare-rdm", "sp_lookup",
            payload={"type": "GhostType", "forwarded": False},
        ))
        assert any(
            vo.network.node(s).messages_in > messages_before[s]
            for s in other_sps
        )


class TestGetDeploymentsOp:
    def test_exclude_sites_at_op_level(self):
        """Excluding the only host yields an error, not stale wires."""
        vo = make_vo()
        register_with_deployment(vo, "agrid01")

        def run():
            try:
                yield from vo.client_call(
                    "agrid02", "get_deployments",
                    payload={"type": "OpApp", "auto_deploy": False,
                             "exclude_sites": ["agrid01"]},
                )
            except DeploymentNotFound:
                return "excluded"

        assert vo.run_process(run()) == "excluded"

    def test_string_payload_shorthand(self):
        vo = make_vo()
        register_with_deployment(vo, "agrid01")
        wires = vo.run_process(vo.client_call("agrid02", "get_deployments",
                                              payload="OpApp"))
        assert len(wires) == 1

    def test_auto_deploy_false_does_not_install(self):
        vo = make_vo()
        publish_applications(vo, ["Wien2k"])
        spec = get_application("Wien2k")
        vo.run_process(vo.client_call("agrid01", "register_type",
                                      payload={"xml": spec.type_xml}))

        def run():
            try:
                yield from vo.client_call(
                    "agrid02", "get_deployments",
                    payload={"type": "Wien2k", "auto_deploy": False},
                )
            except DeploymentNotFound:
                return "no-deploy"

        assert vo.run_process(run()) == "no-deploy"
        # nothing got installed anywhere
        for name in vo.site_names:
            assert vo.stack(name).adr.local_deployments_for("Wien2k") == []


class TestInstantiateOp:
    def test_unknown_deployment_raises(self):
        vo = make_vo()

        def run():
            try:
                yield from vo.client_call(
                    "agrid01", "instantiate",
                    payload={"key": "nowhere:ghost", "demand": 1.0},
                )
            except DeploymentNotFound:
                return "missing"

        assert vo.run_process(run()) == "missing"

    def test_instantiate_service_runs_inline(self):
        vo = make_vo()
        vo.run_process(vo.client_call("agrid01", "register_type",
                                      payload={"xml": TYPE_XML}))
        service_dep = ActivityDeployment(
            name="WS-OpApp", type_name="OpApp", kind=DeploymentKind.SERVICE,
            site="agrid01", endpoint="https://agrid01/wsrf/services/WS-OpApp",
            status=DeploymentStatus.ACTIVE,
        )
        vo.run_process(vo.client_call(
            "agrid01", "register_deployment",
            payload={"xml": service_dep.to_xml().to_string()},
        ))
        gram = vo.network.node("agrid01").services["gram"]
        jobs_before = gram.jobs_submitted
        out = vo.run_process(vo.network.call(
            "agrid02", "agrid01", "glare-rdm", "instantiate",
            payload={"key": service_dep.key, "demand": 1.5},
        ))
        assert out["exit_code"] == 0
        # plain services do not go through GRAM
        assert gram.jobs_submitted == jobs_before

    def test_metrics_visible_to_other_clients(self):
        vo = make_vo()
        deployment = register_with_deployment(vo, "agrid01")
        vo.run_process(vo.network.call(
            "agrid02", "agrid01", "glare-rdm", "instantiate",
            payload={"key": deployment.key, "demand": 2.0},
        ))
        wire = vo.run_process(vo.network.call(
            "agrid03", "agrid01", "activity-deployment-registry",
            "get_deployment", payload=deployment.key,
        ))
        stored = ActivityDeployment.from_xml(wire["xml"])
        assert stored.last_return_code == 0
        assert stored.last_execution_time >= 2.0


class TestRegisterForwarding:
    def test_rdm_register_type_lands_in_atr(self):
        vo = make_vo()
        out = vo.run_process(vo.client_call("agrid01", "register_type",
                                            payload={"xml": TYPE_XML}))
        assert out["registered"] == "OpApp"
        assert "OpApp" in vo.stack("agrid01").atr.local_type_names()

    def test_rdm_register_deployment_lands_in_adr(self):
        vo = make_vo()
        deployment = register_with_deployment(vo, "agrid01")
        assert deployment.key in vo.stack("agrid01").adr.deployments
