"""Unit tests for the Activity Type and Deployment registries."""

import pytest

from repro.glare.errors import GlareError, TypeMissingForDeployment, TypeNotFound
from repro.glare.model import (
    ActivityDeployment,
    ActivityType,
    DeploymentKind,
    DeploymentStatus,
    TypeKind,
)
from repro.glare.registry import (
    ActivityDeploymentRegistry,
    ActivityTypeRegistry,
    ADR_SERVICE,
    ATR_SERVICE,
)
from repro.net.network import Network
from repro.net.topology import Topology
from repro.simkernel import Simulator
from repro.wsrf.resource import EndpointReference

TYPE_XML = (
    '<ActivityTypeEntry name="App" kind="concrete">'
    "<Domain>demo</Domain><BaseType>Root</BaseType></ActivityTypeEntry>"
)
LIMITED_TYPE_XML = (
    '<ActivityTypeEntry name="Limited" kind="concrete">'
    '<Domain>demo</Domain><DeploymentLimits max="1"/></ActivityTypeEntry>'
)


def deployment_xml(name="app", type_name="App", site="s0"):
    d = ActivityDeployment(
        name=name, type_name=type_name, kind=DeploymentKind.EXECUTABLE,
        site=site, path=f"/opt/{name}/bin/{name}",
        status=DeploymentStatus.ACTIVE,
    )
    return d.to_xml().to_string()


@pytest.fixture()
def world():
    sim = Simulator(seed=41)
    topo = Topology.full_mesh(["s0", "s1"], latency=0.003, bandwidth=1e7)
    net = Network(sim, topo)
    net.add_node("s0", cores=2)
    net.add_node("s1", cores=2)
    atr = ActivityTypeRegistry(net, "s0")
    adr = ActivityDeploymentRegistry(net, "s0", atr=atr)
    return sim, net, atr, adr


def call(sim, net, service, method, payload, src="s1"):
    def client():
        value = yield from net.call(src, "s0", service, method, payload=payload)
        return value

    proc = sim.process(client())
    sim.run(until=proc)
    return proc.value


class TestTypeRegistry:
    def test_register_and_lookup(self, world):
        sim, net, atr, adr = world
        out = call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        assert out["registered"] == "App"
        wire = call(sim, net, ATR_SERVICE, "lookup_type", "App")
        assert wire is not None
        parsed = ActivityType.from_xml(wire["xml"])
        assert parsed.name == "App"
        assert parsed.provider == "s1"  # defaulted to the registering site

    def test_lookup_missing_returns_none(self, world):
        sim, net, atr, adr = world
        assert call(sim, net, ATR_SERVICE, "lookup_type", "Ghost") is None

    def test_xpath_query_over_aggregation(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        hits = call(sim, net, ATR_SERVICE, "query",
                    "//ActivityTypeEntry[@name='App']")
        assert len(hits) == 1

    def test_remove_type(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        out = call(sim, net, ATR_SERVICE, "remove_type", "App")
        assert out["removed"] is True
        assert call(sim, net, ATR_SERVICE, "lookup_type", "App") is None
        assert call(sim, net, ATR_SERVICE, "query",
                    "//ActivityTypeEntry[@name='App']") == []

    def test_get_lut_tracks_registration(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        lut = call(sim, net, ATR_SERVICE, "get_lut", "App")
        assert lut is not None and lut > 0
        assert call(sim, net, ATR_SERVICE, "get_lut", "Ghost") is None

    def test_set_termination(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        out = call(sim, net, ATR_SERVICE, "set_termination",
                   {"name": "App", "at": 500.0})
        assert out["terminates_at"] == 500.0
        resource = atr.home.lookup("App")
        assert resource.termination_time == 500.0

    def test_cached_type_separate_from_local(self, world):
        sim, net, atr, adr = world
        remote = ActivityType.from_xml(TYPE_XML)
        source = EndpointReference("s1/atr", ATR_SERVICE, "App",
                                   last_update_time=1.0)
        atr.add_cached_type(remote, source)
        assert atr.find_type("App") is not None
        assert atr.local_type_names() == []
        assert atr.authoritative_epr("App").site == "s1"
        atr.drop_cached_type("App")
        assert atr.find_type("App") is None

    def test_cache_disabled_registry_does_not_cache(self, world):
        sim, net, atr, adr = world
        atr.cache_enabled = False
        remote = ActivityType.from_xml(TYPE_XML)
        source = EndpointReference("s1/atr", ATR_SERVICE, "App")
        assert atr.add_cached_type(remote, source) is None
        assert atr.find_type("App") is None

    def test_list_types(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        out = call(sim, net, ATR_SERVICE, "list_types", None)
        assert out["local"] == ["App"]
        assert out["cached"] == []


class TestDeploymentRegistry:
    def test_register_requires_type(self, world):
        sim, net, atr, adr = world
        with pytest.raises(TypeMissingForDeployment):
            call(sim, net, ADR_SERVICE, "register_deployment",
                 {"xml": deployment_xml()})

    def test_dynamic_type_registration(self, world):
        """Paper §3.1: unknown type + type_xml => ATR registers it."""
        sim, net, atr, adr = world
        out = call(sim, net, ADR_SERVICE, "register_deployment",
                   {"xml": deployment_xml(), "type_xml": TYPE_XML})
        assert out["registered"] == "s0:app"
        assert atr.find_type("App") is not None  # dynamically registered

    def test_lookup_deployments(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        call(sim, net, ADR_SERVICE, "register_deployment",
             {"xml": deployment_xml("app1")})
        call(sim, net, ADR_SERVICE, "register_deployment",
             {"xml": deployment_xml("app2")})
        wires = call(sim, net, ADR_SERVICE, "lookup_deployments", "App")
        names = {ActivityDeployment.from_xml(w["xml"]).name for w in wires}
        assert names == {"app1", "app2"}

    def test_max_deployments_enforced(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": LIMITED_TYPE_XML})
        call(sim, net, ADR_SERVICE, "register_deployment",
             {"xml": deployment_xml("one", type_name="Limited")})
        with pytest.raises(GlareError, match="at most 1"):
            call(sim, net, ADR_SERVICE, "register_deployment",
                 {"xml": deployment_xml("two", type_name="Limited")})

    def test_update_status_refreshes_lut(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        call(sim, net, ADR_SERVICE, "register_deployment",
             {"xml": deployment_xml()})
        lut_before = adr.home.lookup("s0:app").last_update_time
        sim.run(until=sim.now + 10)
        out = call(sim, net, ADR_SERVICE, "update_status",
                   {"key": "s0:app", "status": "failed",
                    "last_return_code": 1})
        assert out["lut"] > lut_before
        assert adr.deployments["s0:app"].status == DeploymentStatus.FAILED
        assert adr.deployments["s0:app"].last_return_code == 1
        # the aggregated resource document reflects the new status
        hits = call(sim, net, ADR_SERVICE, "query",
                    "//ActivityDeployment[@status='failed']")
        assert len(hits) == 1

    def test_remove_deployment(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        call(sim, net, ADR_SERVICE, "register_deployment",
             {"xml": deployment_xml()})
        out = call(sim, net, ADR_SERVICE, "remove_deployment", "s0:app")
        assert out["removed"] is True
        assert call(sim, net, ADR_SERVICE, "lookup_deployments", "App") == []

    def test_get_deployment_by_key(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        call(sim, net, ADR_SERVICE, "register_deployment",
             {"xml": deployment_xml()})
        wire = call(sim, net, ADR_SERVICE, "get_deployment", "s0:app")
        assert ActivityDeployment.from_xml(wire["xml"]).name == "app"
        assert call(sim, net, ADR_SERVICE, "get_deployment", "nope") is None

    def test_cached_deployment_bookkeeping(self, world):
        sim, net, atr, adr = world
        call(sim, net, ATR_SERVICE, "register_type", {"xml": TYPE_XML})
        remote = ActivityDeployment.from_xml(deployment_xml("rapp", site="s1"))
        source = EndpointReference("s1/adr", ADR_SERVICE, remote.key)
        adr.add_cached_deployment(remote, source)
        assert remote.key in adr.cached_deployments
        assert [d.name for d in adr.all_deployments_for("App")] == ["rapp"]
        assert adr.local_deployments_for("App") == []
        adr.drop_cached_deployment(remote.key)
        assert adr.all_deployments_for("App") == []


class TestLookupCosts:
    def test_named_lookup_flat_in_registry_size(self, world):
        """The hash-table property: lookup time independent of size."""
        sim, net, atr, adr = world
        for index in range(200):
            at = ActivityType(name=f"T{index}", kind=TypeKind.CONCRETE,
                              installation=None)
            # concrete without installation is fine for lookup purposes
            object.__setattr__ if False else None
            atr.add_local_type(at)
        t0 = sim.now
        call(sim, net, ATR_SERVICE, "lookup_type", "T0")
        small_duration = sim.now - t0
        t0 = sim.now
        call(sim, net, ATR_SERVICE, "lookup_type", "T199")
        large_duration = sim.now - t0
        assert abs(small_duration - large_duration) < 0.002
