"""Registry-change notifications: the mechanism behind Fig. 13's sinks."""

import pytest

from repro.glare.registry import ATR_SERVICE
from repro.vo import build_vo
from repro.wsrf.notification import NotificationSink

TYPE_XML = (
    '<ActivityTypeEntry name="Notified" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


@pytest.fixture()
def vo():
    vo = build_vo(n_sites=3, seed=151, monitors=False)
    vo.form_overlay()
    return vo


def test_sink_receives_registration_event(vo):
    sink = NotificationSink(vo.network, "agrid02", name="watcher")
    out = vo.run_process(vo.network.call(
        "agrid02", "agrid01", ATR_SERVICE, "subscribe",
        payload={"sink_site": "agrid02", "sink_service": "watcher"},
    ))
    assert out["subscription_id"] > 0
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": TYPE_XML}))
    vo.sim.run(until=vo.sim.now + 2)
    assert sink.received
    event = sink.received[-1]
    assert event["event"] == "registered"
    assert event["type"] == "Notified"
    assert event["site"] == "agrid01"


def test_sink_receives_removal_event(vo):
    sink = NotificationSink(vo.network, "agrid02", name="watcher")
    vo.run_process(vo.network.call(
        "agrid02", "agrid01", ATR_SERVICE, "subscribe",
        payload={"sink_site": "agrid02", "sink_service": "watcher"},
    ))
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": TYPE_XML}))
    vo.run_process(vo.network.call(
        "agrid02", "agrid01", ATR_SERVICE, "remove_type", payload="Notified",
    ))
    vo.sim.run(until=vo.sim.now + 2)
    events = [e["event"] for e in sink.received]
    assert events == ["registered", "removed"]


def test_unsubscribe_stops_events(vo):
    sink = NotificationSink(vo.network, "agrid02", name="watcher")
    out = vo.run_process(vo.network.call(
        "agrid02", "agrid01", ATR_SERVICE, "subscribe",
        payload={"sink_site": "agrid02", "sink_service": "watcher"},
    ))
    result = vo.run_process(vo.network.call(
        "agrid02", "agrid01", ATR_SERVICE, "unsubscribe",
        payload=out["subscription_id"],
    ))
    assert result["unsubscribed"] is True
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": TYPE_XML}))
    vo.sim.run(until=vo.sim.now + 2)
    assert sink.received == []


def test_unsubscribe_unknown_id(vo):
    result = vo.run_process(vo.network.call(
        "agrid02", "agrid01", ATR_SERVICE, "unsubscribe", payload=987654,
    ))
    assert result["unsubscribed"] is False


def test_no_subscribers_no_cost(vo):
    """Publishing with no sinks is a no-op (Fig. 13's zero-sink point)."""
    atr = vo.stack("agrid01").atr
    assert atr.notifications.subscriber_count() == 0
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": TYPE_XML}))
    assert atr.notifications.published >= 1
    assert atr.notifications.delivered == 0
