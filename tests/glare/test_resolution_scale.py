"""Tests for the scaled resolution path: singleflight coalescing,
batched cache revalidation, super-peer digests and negative caching
(all off by default; see :class:`repro.glare.resolution.ResolutionConfig`)."""

import pytest

from repro.glare.model import ActivityDeployment, DeploymentKind, DeploymentStatus
from repro.glare.monitors import CacheRefresher
from repro.glare.resolution import ResolutionConfig, TypeDigest
from repro.vo import build_vo

TYPE_XML = (
    '<ActivityTypeEntry name="ScaleApp" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


def make_vo(resolution=None, **kwargs):
    kwargs.setdefault("n_sites", 4)
    kwargs.setdefault("seed", 71)
    kwargs.setdefault("monitors", False)
    kwargs.setdefault("lifecycle", False)
    vo = build_vo(resolution=resolution, **kwargs)
    vo.form_overlay()
    return vo


def register_type_and_deployment(vo, site, type_name="ScaleApp"):
    xml = TYPE_XML.replace("ScaleApp", type_name)
    vo.run_process(vo.client_call(site, "register_type", payload={"xml": xml}))
    deployment = ActivityDeployment(
        name=f"{type_name.lower()}-bin", type_name=type_name,
        kind=DeploymentKind.EXECUTABLE, site=site,
        path=f"/opt/deployments/{type_name.lower()}/bin/run",
        status=DeploymentStatus.ACTIVE,
    )
    vo.run_process(vo.client_call(
        site, "register_deployment",
        payload={"xml": deployment.to_xml().to_string()},
    ))
    return deployment


def concurrent_resolutions(vo, site, type_name, count):
    """``count`` clients at ``site`` resolve ``type_name`` at once.

    Returns (outcomes, messages): each outcome is a sorted key list or
    an exception class name.
    """
    outcomes = []

    def one(index):
        try:
            wires = yield from vo.client_call(
                site, "get_deployments",
                payload={"type": type_name, "auto_deploy": False},
            )
            outcomes.append(sorted(w["epr"]["key"] for w in wires))
        except Exception as error:
            outcomes.append(type(error).__name__)

    before = vo.network.total_messages
    procs = [vo.sim.process(one(i), name=f"client-{i}") for i in range(count)]
    vo.sim.run(until=vo.sim.all_of(procs))
    return outcomes, vo.network.total_messages - before


class TestSingleflight:
    def test_concurrent_resolutions_coalesce(self):
        config = ResolutionConfig(singleflight=True)
        vo = make_vo(resolution=config, cache_enabled=False)
        deployment = register_type_and_deployment(vo, "agrid02")
        baseline_vo = make_vo(cache_enabled=False)
        register_type_and_deployment(baseline_vo, "agrid02")

        outcomes, messages = concurrent_resolutions(vo, "agrid01", "ScaleApp", 5)
        base_outcomes, base_messages = concurrent_resolutions(
            baseline_vo, "agrid01", "ScaleApp", 5)

        assert outcomes == [[deployment.key]] * 5
        assert outcomes == base_outcomes
        manager = vo.rdm("agrid01").request_manager
        assert manager.singleflight_joined == 4
        # one walk instead of five
        assert messages < base_messages
        # followers inherit the leader's tier attribution
        tiers = (manager.resolved_locally + manager.resolved_in_group
                 + manager.resolved_via_superpeer + manager.resolved_by_deployment)
        assert tiers == 5

    def test_leader_failure_falls_back_to_own_walk(self):
        config = ResolutionConfig(singleflight=True)
        vo = make_vo(resolution=config, cache_enabled=False)
        outcomes, _ = concurrent_resolutions(vo, "agrid01", "NoSuchApp", 4)
        # the leader's walk raised; every follower ran (and failed) its own
        assert outcomes == ["TypeNotFound"] * 4
        assert vo.rdm("agrid01").request_manager.singleflight_joined == 3

    def test_sequential_resolutions_never_join(self):
        config = ResolutionConfig(singleflight=True)
        vo = make_vo(resolution=config, cache_enabled=False)
        register_type_and_deployment(vo, "agrid02")
        for _ in range(3):
            vo.run_process(vo.client_call(
                "agrid01", "get_deployments",
                payload={"type": "ScaleApp", "auto_deploy": False},
            ))
        assert vo.rdm("agrid01").request_manager.singleflight_joined == 0


class TestBatchedRevalidation:
    def setup_cached_copy(self, vo):
        deployment = register_type_and_deployment(vo, "agrid01")
        vo.run_process(vo.client_call(
            "agrid02", "get_deployments",
            payload={"type": "ScaleApp", "auto_deploy": False},
        ))
        assert deployment.key in vo.stack("agrid02").adr.cached_deployments
        return deployment

    def test_source_update_propagates_via_batch(self):
        vo = make_vo(resolution=ResolutionConfig(batch_revalidation=True))
        deployment = self.setup_cached_copy(vo)
        vo.sim.run(until=vo.sim.now + 5)
        vo.run_process(vo.client_call(
            "agrid01", "update_status",
            payload={"key": deployment.key, "status": "failed"},
            service="activity-deployment-registry",
        ))
        refresher = CacheRefresher(vo.rdm("agrid02"), interval=15.0)
        vo.run_process(refresher.tick())
        cached = vo.stack("agrid02").adr.cached_deployments[deployment.key]
        assert cached.status == DeploymentStatus.FAILED
        assert refresher.refreshed == 1
        assert refresher.batched_rpcs >= 1

    def test_vanished_source_resource_discarded_via_batch(self):
        vo = make_vo(resolution=ResolutionConfig(batch_revalidation=True))
        deployment = self.setup_cached_copy(vo)
        vo.run_process(vo.client_call(
            "agrid01", "remove_deployment", payload=deployment.key,
            service="activity-deployment-registry",
        ))
        refresher = CacheRefresher(vo.rdm("agrid02"), interval=15.0)
        vo.run_process(refresher.tick())
        assert deployment.key not in vo.stack("agrid02").adr.cached_deployments
        assert refresher.discarded >= 1

    def test_batching_reaches_same_state_with_fewer_messages(self):
        states, messages = [], []
        for batched in (False, True):
            vo = make_vo(
                resolution=ResolutionConfig(batch_revalidation=batched),
                n_sites=5, group_size=6,
            )
            for index, home in enumerate(("agrid01", "agrid02", "agrid03",
                                          "agrid04", "agrid01", "agrid02")):
                register_type_and_deployment(vo, home, f"BatchApp{index}")
            for index in range(6):
                vo.run_process(vo.client_call(
                    "agrid00", "get_deployments",
                    payload={"type": f"BatchApp{index}", "auto_deploy": False},
                ))
            refresher = CacheRefresher(vo.rdm("agrid00"), interval=15.0)
            before = vo.network.total_messages
            vo.run_process(refresher.tick())
            messages.append(vo.network.total_messages - before)
            stack = vo.stack("agrid00")
            states.append((
                sorted(stack.atr.cache_sources),
                sorted(stack.adr.cache_sources),
                {k: d.status for k, d in stack.adr.cached_deployments.items()},
            ))
        assert states[0] == states[1]
        assert messages[1] < messages[0]


class TestTypeDigest:
    def test_group_claims_and_forget(self):
        digest = TypeDigest()
        digest.learn_group("App", "sp1")
        digest.learn_group("App", "sp2")
        assert digest.groups_for("App") == ["sp1", "sp2"]
        digest.forget_group("App", "sp1")
        assert digest.groups_for("App") == ["sp2"]
        assert digest.groups_for("Other") is None

    def test_reset_bumps_epoch_and_clears_claims(self):
        digest = TypeDigest()
        digest.learn_group("App", "sp1")
        digest.learn_member("m1", ["App"], epoch=0, full=True)
        digest.note_missing("Ghost", now=0.0, ttl=100.0)
        digest.reset(epoch=1)
        assert digest.epoch == 1
        assert digest.groups_for("App") is None
        assert digest.members_for("App", ["m1"]) is None
        assert not digest.is_missing("Ghost", now=1.0)
        assert digest.resets == 1

    def test_stale_epoch_notes_ignored(self):
        digest = TypeDigest()
        digest.reset(epoch=2)
        digest.learn_member("m1", ["App"], epoch=1, full=True)
        assert digest.members_for("App", ["m1"]) is None
        digest.learn_member("m1", ["App"], epoch=2, full=True)
        assert digest.members_for("App", ["m1"]) == ["m1"]

    def test_members_for_requires_full_sync(self):
        digest = TypeDigest()
        digest.learn_member("m1", ["App"], epoch=0, full=True)
        # m2 never sent a bulk note: narrowing would be lossy
        assert digest.members_for("App", ["m1", "m2"]) is None
        digest.learn_member("m2", [], epoch=0, full=True)
        assert digest.members_for("App", ["m1", "m2"]) == ["m1"]
        assert digest.members_for("Other", ["m1", "m2"]) == []

    def test_negative_cache_ttl_and_clear(self):
        digest = TypeDigest()
        digest.note_missing("Ghost", now=10.0, ttl=5.0)
        assert digest.is_missing("Ghost", now=14.9)
        assert not digest.is_missing("Ghost", now=15.1)  # expired
        digest.note_missing("Ghost", now=20.0, ttl=5.0)
        digest.clear_missing("Ghost")  # a registration landed
        assert not digest.is_missing("Ghost", now=21.0)


class TestDigestIntegration:
    CONFIG = dict(digests=True, negative_ttl=30.0)

    def test_negative_cache_suppresses_refloods_until_ttl(self):
        vo = make_vo(resolution=ResolutionConfig(**self.CONFIG), n_sites=6)
        costs = []
        for _ in range(2):
            _, messages = concurrent_resolutions(vo, "agrid01", "GhostApp", 1)
            costs.append(messages)
        negative_hits = sum(
            vo.rdm(name).digest.negative_hits
            for name in vo.site_names
            if vo.rdm(name).digest is not None
        )
        assert negative_hits == 1
        assert costs[1] < costs[0]
        # past the TTL the claim is re-verified with a full walk
        vo.sim.run(until=vo.sim.now + 31.0)
        _, expired_cost = concurrent_resolutions(vo, "agrid01", "GhostApp", 1)
        assert expired_cost > costs[1]

    def test_registration_clears_negative_entry(self):
        vo = make_vo(resolution=ResolutionConfig(**self.CONFIG), n_sites=6)
        outcomes, _ = concurrent_resolutions(vo, "agrid01", "LateApp", 1)
        assert outcomes == ["TypeNotFound"]
        deployment = register_type_and_deployment(vo, "agrid01", "LateApp")
        vo.sim.run(until=vo.sim.now + 5.0)  # let digest notes land
        outcomes, _ = concurrent_resolutions(vo, "agrid01", "LateApp", 1)
        assert outcomes == [[deployment.key]]

    def test_reelection_resets_digests(self):
        vo = make_vo(resolution=ResolutionConfig(**self.CONFIG), n_sites=6)
        register_type_and_deployment(vo, "agrid03")
        concurrent_resolutions(vo, "agrid01", "ScaleApp", 1)
        coordinator = vo.rdm(vo.community_site)
        resets_before = sum(
            vo.rdm(n).digest.resets for n in vo.super_peers()
            if vo.rdm(n).digest is not None
        )
        vo.run_process(coordinator.overlay.run_election(list(vo.stacks)))
        vo.sim.run(until=vo.sim.now + 10.0)
        super_peers = vo.super_peers()
        resets = [vo.rdm(n).digest.resets for n in super_peers
                  if vo.rdm(n).digest is not None]
        assert sum(resets) > resets_before
        # digests carry the new election epoch
        for name in super_peers:
            digest = vo.rdm(name).digest
            assert digest is not None
            assert digest.epoch == vo.rdm(name).overlay.view.epoch

    def test_digest_narrowing_preserves_results(self):
        """Same request sequence, same answers, fewer messages."""
        results = {}
        for optimized in (False, True):
            resolution = (ResolutionConfig(**self.CONFIG) if optimized
                          else None)
            vo = make_vo(resolution=resolution, n_sites=8,
                         cache_enabled=False, group_size=3, seed=9)
            deployment = register_type_and_deployment(vo, "agrid05")
            vo.sim.run(until=vo.sim.now + 5.0)
            outcomes = []
            total = 0
            for _ in range(3):
                out, messages = concurrent_resolutions(
                    vo, "agrid01", "ScaleApp", 1)
                outcomes.extend(out)
                total += messages
            results[optimized] = (outcomes, total)
            assert outcomes == [[deployment.key]] * 3
        assert results[True][0] == results[False][0]
        assert results[True][1] < results[False][1]


class TestJitterAndFanoutCounters:
    def test_monitor_jitter_is_deterministic_and_spread(self):
        phases = []
        for _ in range(2):
            vo = build_vo(
                n_sites=4, seed=5, monitors=True, lifecycle=False,
                resolution=ResolutionConfig(monitor_jitter=True),
            )
            phases.append({
                (name, monitor.NAME): monitor.phase
                for name in vo.site_names
                for monitor in vo.rdm(name)._monitors
            })
        assert phases[0] == phases[1]  # same seed, same phases
        assert all(p > 0.0 for p in phases[0].values())
        assert len(set(phases[0].values())) > 1  # actually spread out

    def test_jitter_off_keeps_zero_phase(self):
        vo = build_vo(n_sites=3, seed=5, monitors=True, lifecycle=False)
        assert all(
            monitor.phase == 0.0
            for name in vo.site_names
            for monitor in vo.rdm(name)._monitors
        )

    def test_fanout_failures_counted_per_site(self):
        vo = make_vo(cache_enabled=False)
        register_type_and_deployment(vo, "agrid02")
        vo.stack("agrid03").site.fail()
        outcomes, _ = concurrent_resolutions(vo, "agrid01", "ScaleApp", 1)
        assert outcomes and isinstance(outcomes[0], list)
        failures = {}
        for name in vo.site_names:
            for site, count in vo.rdm(name).request_manager.fanout_failures.items():
                failures[site] = failures.get(site, 0) + count
        assert failures.get("agrid03", 0) >= 1
