"""Single-flight installation: concurrent requests don't duplicate."""

import pytest

from repro.apps import get_application, publish_applications
from repro.glare.model import ActivityDeployment
from repro.vo import build_vo


def test_concurrent_requests_share_one_install():
    vo = build_vo(n_sites=4, seed=307, monitors=False)
    publish_applications(vo, ["Invmod"])
    vo.form_overlay()
    spec = get_application("Invmod")
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": spec.type_xml}))

    results = []

    def client(index):
        wires = yield from vo.client_call("agrid01", "get_deployments",
                                          payload="Invmod")
        results.append((index, wires))

    # three clients of the SAME local GLARE service fire simultaneously
    for index in range(3):
        vo.sim.process(client(index))
    vo.sim.run(until=vo.sim.now + 600)

    assert len(results) == 3
    keys = {
        ActivityDeployment.from_xml(w["xml"]).key
        for _, wires in results for w in wires
    }
    # exactly one installation happened: one deployment key, everywhere
    assert len(keys) == 1
    rdm = vo.rdm("agrid01")
    assert rdm.deployment_manager.stats.installs_succeeded == 1
    assert rdm.deployment_manager.piggybacked == 2
    # and only one site actually holds Invmod
    holders = [
        name for name in vo.site_names
        if vo.stack(name).adr.local_deployments_for("Invmod")
    ]
    assert len(holders) == 1


def test_piggybackers_see_failures():
    vo = build_vo(n_sites=2, seed=311, monitors=False)
    publish_applications(vo, ["Invmod"])
    vo.form_overlay()
    spec = get_application("Invmod")
    # break the install: unpublish the archive content
    vo.url_catalog.entries.pop(spec.archive_url)
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": spec.type_xml}))
    failures = []

    def client(index):
        try:
            yield from vo.client_call("agrid01", "get_deployments",
                                      payload="Invmod")
        except Exception as error:
            failures.append((index, type(error).__name__))

    for index in range(2):
        vo.sim.process(client(index))
    vo.sim.run(until=vo.sim.now + 600)
    assert len(failures) == 2
    # both the leader and the piggybacker surface DeploymentFailed
    assert {name for _, name in failures} == {"DeploymentFailed"}
    rdm = vo.rdm("agrid01")
    assert rdm.deployment_manager.piggybacked == 1
    assert rdm.deployment_manager._in_flight == {}


def test_sequential_requests_do_not_piggyback():
    vo = build_vo(n_sites=3, seed=313, monitors=False)
    publish_applications(vo, ["Wien2k"])
    vo.form_overlay()
    spec = get_application("Wien2k")
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": spec.type_xml}))
    vo.run_process(vo.client_call("agrid01", "get_deployments",
                                  payload="Wien2k"))
    vo.run_process(vo.client_call("agrid01", "get_deployments",
                                  payload="Wien2k"))
    rdm = vo.rdm("agrid01")
    assert rdm.deployment_manager.piggybacked == 0
    assert rdm.deployment_manager.stats.installs_succeeded == 1
