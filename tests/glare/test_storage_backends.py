"""Conformance suite for registry storage backends + ring properties.

One parametrized suite runs against every :class:`RegistryBackend`
implementation, pinning the contract documented on the ABC; separate
classes pin the :class:`HashRing` guarantees (deterministic placement,
balance, minimal movement) and the ``op_get_lut_batch`` wire-size fix.
"""

import pytest

from repro.glare.model import ActivityDeployment, DeploymentKind, DeploymentStatus
from repro.glare.registry import (
    ActivityDeploymentRegistry,
    ActivityTypeRegistry,
    ATR_SERVICE,
    ADR_SERVICE,
)
from repro.glare.storage import (
    DictBackend,
    HashRing,
    ShardedBackend,
    StorageConfig,
    stable_hash,
)
from repro.net.message import Message, Response, estimate_size
from repro.net.network import Network
from repro.net.topology import Topology
from repro.simkernel import Simulator


class _Stamped:
    def __init__(self, lut):
        self.last_update_time = lut


def _make_sharded():
    return ShardedBackend(HashRing([f"shard-{i}" for i in range(4)]))


@pytest.fixture(params=["dict", "sharded"])
def backend(request):
    return DictBackend() if request.param == "dict" else _make_sharded()


class TestBackendConformance:
    def test_put_get_roundtrip(self, backend):
        backend.put("a", 1)
        assert backend.get("a") == 1

    def test_put_replaces(self, backend):
        backend.put("a", 1)
        backend.put("a", 2)
        assert backend.get("a") == 2
        assert len(backend) == 1

    def test_get_absent_returns_none(self, backend):
        assert backend.get("ghost") is None

    def test_delete_returns_value_and_removes(self, backend):
        backend.put("a", 7)
        assert backend.delete("a") == 7
        assert backend.get("a") is None
        assert len(backend) == 0

    def test_delete_absent_returns_none(self, backend):
        assert backend.delete("ghost") is None

    def test_scan_yields_every_pair_once(self, backend):
        expected = {f"k{i}": i for i in range(50)}
        for key, value in expected.items():
            backend.put(key, value)
        assert dict(backend.scan()) == expected
        assert len(list(backend.scan())) == 50

    def test_scan_is_snapshot_safe(self, backend):
        for i in range(10):
            backend.put(f"k{i}", i)
        seen = []
        for key, _ in backend.scan():
            backend.delete(key)  # mutation mid-scan must not blow up
            seen.append(key)
        assert sorted(seen) == sorted(f"k{i}" for i in range(10))
        assert len(backend) == 0

    def test_len_counts_keys(self, backend):
        for i in range(5):
            backend.put(f"k{i}", i)
        assert len(backend) == 5

    def test_contains(self, backend):
        backend.put("a", 1)
        assert "a" in backend
        assert "b" not in backend

    def test_lut_reads_last_update_time(self, backend):
        backend.put("stamped", _Stamped(12.5))
        backend.put("plain", object())
        assert backend.lut("stamped") == 12.5
        assert backend.lut("plain") is None
        assert backend.lut("ghost") is None


class TestDictBackendOrder:
    def test_scan_preserves_insertion_order(self):
        # the property every keys()-walk fingerprint relies on
        backend = DictBackend()
        for key in ("z", "a", "m"):
            backend.put(key, key.upper())
        assert [k for k, _ in backend.scan()] == ["z", "a", "m"]


class TestHashRing:
    def test_deterministic_placement_from_seed(self):
        keys = [f"type-{i}" for i in range(500)]
        ring_a = HashRing(["n0", "n1", "n2"], seed=7)
        ring_b = HashRing(["n2", "n0", "n1"], seed=7)  # insertion order differs
        assert [ring_a.route(k) for k in keys] == [ring_b.route(k) for k in keys]

    def test_seed_changes_placement(self):
        keys = [f"type-{i}" for i in range(500)]
        ring_a = HashRing(["n0", "n1", "n2"], seed=0)
        ring_b = HashRing(["n0", "n1", "n2"], seed=1)
        assert ([ring_a.route(k) for k in keys]
                != [ring_b.route(k) for k in keys])

    def test_balance_within_bound(self):
        ring = HashRing([f"n{i}" for i in range(8)], virtual_nodes=64)
        counts = {node: 0 for node in ring.nodes()}
        n_keys = 10_000
        for i in range(n_keys):
            counts[ring.route(f"activity-type-{i:05d}")] += 1
        mean = n_keys / 8
        # 64 virtual nodes keep the realized imbalance well under 2x
        # at this occupancy (fig17 records the measured values)
        assert max(counts.values()) <= mean * 2.0
        assert min(counts.values()) >= mean * 0.3

    def test_minimal_movement_on_node_join(self):
        keys = [f"type-{i}" for i in range(4000)]
        before = HashRing([f"n{i}" for i in range(8)])
        after = HashRing([f"n{i}" for i in range(9)])
        moved = sum(1 for k in keys if before.route(k) != after.route(k))
        # the joining node should take ~1/9 of the keys and nothing
        # else should move; allow 2x headroom for ring statistics
        assert moved <= 2 * len(keys) / 9
        # every moved key must have moved TO the new node
        for key in keys:
            if before.route(key) != after.route(key):
                assert after.route(key) == "n8"

    def test_route_on_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().route("anything")

    def test_virtual_nodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(virtual_nodes=0)

    def test_add_remove_roundtrip(self):
        ring = HashRing(["a", "b"])
        ring.add_node("c")
        ring.add_node("c")  # idempotent
        assert sorted(ring.nodes()) == ["a", "b", "c"]
        ring.remove_node("b")
        ring.remove_node("b")  # idempotent
        assert sorted(ring.nodes()) == ["a", "c"]
        assert all(ring.route(f"k{i}") in ("a", "c") for i in range(100))

    def test_stable_hash_is_process_stable(self):
        # pinned value: breaks if stable_hash ever falls back to hash()
        assert stable_hash("activity-type") == stable_hash("activity-type")
        assert stable_hash("a") != stable_hash("b")


class TestShardedRebalance:
    def test_rebalance_moves_only_owner_changed_keys(self):
        ring = HashRing([f"n{i}" for i in range(4)])
        backend = ShardedBackend(ring)
        for i in range(2000):
            backend.put(f"type-{i}", i)
        grown = HashRing([f"n{i}" for i in range(5)])
        expected_moves = sum(
            1 for i in range(2000)
            if ring.route(f"type-{i}") != grown.route(f"type-{i}")
        )
        moved = backend.rebalance(grown)
        assert moved == expected_moves
        assert moved <= 2 * 2000 / 5
        # no key lost, every key readable at its new home
        assert len(backend) == 2000
        assert all(backend.get(f"type-{i}") == i for i in range(0, 2000, 97))

    def test_rebalance_handles_node_removal(self):
        backend = ShardedBackend(HashRing(["a", "b", "c"]))
        for i in range(300):
            backend.put(f"k{i}", i)
        backend.rebalance(HashRing(["a", "c"]))
        assert len(backend) == 300
        assert "b" not in backend.shard_sizes()
        assert all(backend.get(f"k{i}") == i for i in range(300))

    def test_imbalance_metric(self):
        backend = _make_sharded()
        assert backend.imbalance() == 1.0  # empty = perfect by definition
        for i in range(1000):
            backend.put(f"type-{i}", i)
        assert 1.0 <= backend.imbalance() < 2.0


class TestStorageConfig:
    def test_defaults_are_off(self):
        config = StorageConfig()
        assert not config.any_enabled
        assert isinstance(config.make_backend(), DictBackend)

    def test_sharded_factory(self):
        config = StorageConfig.sharded(shards=8, routing=True)
        assert config.any_enabled
        backend = config.make_backend()
        assert isinstance(backend, ShardedBackend)
        assert len(backend.ring) == 8

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            StorageConfig(backend="mongo").make_backend()

    def test_backends_agree_on_registry_contents(self):
        # same writes through either backend → same reads: the
        # equivalence fig17 asserts at sweep scale
        dict_b = StorageConfig().make_backend()
        shard_b = StorageConfig.sharded(shards=16).make_backend()
        for i in range(500):
            key = f"activity-type-{i:04d}.domain{i % 7}"
            dict_b.put(key, _Stamped(float(i)))
            shard_b.put(key, _Stamped(float(i)))
        for i in range(500):
            key = f"activity-type-{i:04d}.domain{i % 7}"
            assert dict_b.lut(key) == shard_b.lut(key)
        assert dict(dict_b.scan()).keys() == dict(shard_b.scan()).keys()


# -- shard-note hand-off: ack + bounded retry ------------------------------


class TestShardNoteHandoff:
    """Group views land at different times, so a shard note can reach
    its ring owner before that owner is ready (view not applied, or a
    reset about to wipe the digest).  The sender must treat only
    *acknowledged* claims as forwarded and retry the rest — without
    this, claims announced during overlay formation are silently lost
    and routed lookups degrade to broadcast (observed at 64 groups)."""

    def _build(self):
        from repro.vo import build_vo

        vo = build_vo(n_sites=8, seed=29, group_size=4, monitors=False,
                      lifecycle=False, cache_enabled=False,
                      storage=StorageConfig.sharded(shards=4, routing=True))
        vo.form_overlay()
        vo.sim.run(until=vo.sim.now + 16.0)  # initial hand-off settles
        sps = [s for s in vo.site_names
               if vo.stacks[s].rdm.overlay.is_super_peer]
        assert len(sps) == 2
        return vo, sps

    def _type_owned_by(self, ring, owner, sender):
        for i in range(1000):
            name = f"HandoffProbe{i:03d}"
            if ring.route(name) == owner and ring.route(name) != sender:
                return name
        raise AssertionError("no probe name routed to the target owner")

    def test_unready_owner_refuses_and_sender_retries(self):
        from repro.glare.model import ActivityType

        vo, (sp_a, sp_b) = self._build()
        rdm_a = vo.stacks[sp_a].rdm
        rdm_b = vo.stacks[sp_b].rdm
        name = self._type_owned_by(rdm_a.shard_ring, sp_b, sp_a)

        # stage the formation race: B's view "has not applied yet"
        real_epoch = rdm_b.overlay.view.epoch
        rdm_b.overlay.view.epoch = 0
        rdm_a.atr.add_local_type(ActivityType.from_xml(
            TYPE_XML.format(name=name)))
        vo.sim.run(until=vo.sim.now + 0.5)  # first announcement lands
        assert rdm_b.digest.groups_for(name) is None
        assert name not in rdm_a._forwarded_claims  # un-acked, not burned

        # B becomes ready; the bounded retry must deliver the claim
        rdm_b.overlay.view.epoch = real_epoch
        vo.sim.run(until=vo.sim.now + 2 * rdm_a.SHARD_NOTE_RETRY_DELAY + 1.0)
        assert rdm_b.digest.groups_for(name) == [sp_a]
        assert name in rdm_a._forwarded_claims

    def test_acked_claims_are_not_resent(self):
        from repro.glare.model import ActivityType

        vo, (sp_a, sp_b) = self._build()
        rdm_a = vo.stacks[sp_a].rdm
        name = self._type_owned_by(rdm_a.shard_ring, sp_b, sp_a)
        rdm_a.atr.add_local_type(ActivityType.from_xml(
            TYPE_XML.format(name=name)))
        vo.sim.run(until=vo.sim.now + 1.0)
        assert name in rdm_a._forwarded_claims
        handoffs = rdm_a.shard_handoffs
        # re-announcing the same claim is a no-op (no new hand-off RPC)
        vo.sim.process(rdm_a._send_shard_notes([name]))
        vo.sim.run(until=vo.sim.now + 1.0)
        assert rdm_a.shard_handoffs == handoffs


# -- op_get_lut_batch wire-size regression ---------------------------------


TYPE_XML = (
    '<ActivityTypeEntry name="{name}" kind="concrete">'
    "<Domain>demo</Domain></ActivityTypeEntry>"
)


@pytest.fixture()
def registry_world():
    sim = Simulator(seed=51)
    topo = Topology.full_mesh(["s0", "s1"], latency=0.003, bandwidth=1e7)
    net = Network(sim, topo)
    net.add_node("s0", cores=2)
    net.add_node("s1", cores=2)
    atr = ActivityTypeRegistry(net, "s0")
    adr = ActivityDeploymentRegistry(net, "s0", atr=atr)
    return sim, net, atr, adr


def _drive(sim, generator):
    proc = sim.process(generator)
    sim.run(until=proc)
    return proc.value


@pytest.mark.parametrize("which", ["atr", "adr"])
def test_lut_batch_response_accounts_for_key_lengths(registry_world, which):
    """The old heuristic charged max(256, 40*len) regardless of key
    size; with 60 long keys that undercharged the wire several-fold."""
    sim, net, atr, adr = registry_world
    long_keys = []
    from repro.glare.model import ActivityType

    for i in range(60):
        name = f"VeryLongActivityTypeNameForWireSizing{i:02d}" + "x" * 40
        atr.add_local_type(ActivityType.from_xml(TYPE_XML.format(name=name)))
        if which == "atr":
            long_keys.append(name)
        else:
            deployment = ActivityDeployment(
                name=f"{name.lower()}-bin", type_name=name,
                kind=DeploymentKind.EXECUTABLE, site="s0",
                path=f"/opt/{name}/bin/run", status=DeploymentStatus.ACTIVE,
            )
            adr.add_local_deployment(deployment)
            long_keys.append(deployment.key)

    service = atr if which == "atr" else adr
    message = Message(
        src="s1", dst="s0",
        service=ATR_SERVICE if which == "atr" else ADR_SERVICE,
        method="get_lut_batch", payload=long_keys,
    )
    response = _drive(sim, service.op_get_lut_batch(message))
    assert isinstance(response, Response)
    assert set(response.value) == set(long_keys)
    assert all(lut is not None for lut in response.value.values())
    # compositional-exact: the wire charge is the payload repr, which
    # necessarily exceeds the raw key bytes — and the old heuristic
    assert response.size == estimate_size(response.value)
    assert response.size >= sum(len(key) for key in long_keys)
    assert response.size > 40 * len(long_keys)
