"""Unit tests for the super-peer overlay: election, groups, recovery."""

import pytest

from repro.vo import build_vo


def make_vo(n_sites, group_size=3, seed=61):
    vo = build_vo(n_sites=n_sites, seed=seed, group_size=group_size,
                  monitors=False)
    return vo


class TestElection:
    def test_every_site_assigned(self):
        vo = make_vo(9)
        groups = vo.form_overlay()
        assigned = {m for members in groups.values() for m in members}
        assert assigned == set(vo.site_names)

    def test_group_count_matches_group_size(self):
        vo = make_vo(9, group_size=3)
        vo.form_overlay()
        assert len(vo.super_peers()) == 3

    def test_exactly_one_super_peer_per_group(self):
        vo = make_vo(10, group_size=3)
        groups = vo.form_overlay()
        for super_peer, members in groups.items():
            roles = [vo.rdm(m).overlay.view.role for m in members]
            assert roles.count("super-peer") == 1
            assert vo.rdm(super_peer).overlay.is_super_peer

    def test_super_peers_are_highest_ranked(self):
        """The coordinator elects the top-ranked responders (paper §3.3)."""
        vo = make_vo(8, group_size=4)
        vo.form_overlay()
        ranks = {name: vo.stack(name).site.rank() for name in vo.site_names}
        elected = set(vo.super_peers())
        n_groups = len(elected)
        top_ranked = set(sorted(ranks, key=ranks.get, reverse=True)[:n_groups])
        assert elected == top_ranked

    def test_members_know_the_super_group(self):
        vo = make_vo(9, group_size=3)
        vo.form_overlay()
        super_peers = set(vo.super_peers())
        for name in vo.site_names:
            view = vo.rdm(name).overlay.view
            assert set(view.super_peers) == super_peers

    def test_election_is_deterministic(self):
        groups_a = make_vo(7, seed=5).form_overlay()
        groups_b = make_vo(7, seed=5).form_overlay()
        assert {k: sorted(v) for k, v in groups_a.items()} == {
            k: sorted(v) for k, v in groups_b.items()
        }

    def test_offline_site_excluded_from_election(self):
        vo = make_vo(6, group_size=3)
        vo.stack("agrid04").site.fail()
        groups = vo.form_overlay()
        assigned = {m for members in groups.values() for m in members}
        assert "agrid04" not in {m for m in assigned if m}

    def test_single_site_vo(self):
        vo = make_vo(1)
        groups = vo.form_overlay()
        assert vo.rdm("agrid00").overlay.is_super_peer
        assert groups == {"agrid00": ["agrid00"]}

    def test_smaller_community_preferred(self):
        """A member acks the coordinator of the smaller community."""
        vo = make_vo(4)
        overlay = vo.rdm("agrid01").overlay
        overlay.handle_election_notice(
            {"coordinator": "big", "community_size": 50, "phase": 1})
        overlay.handle_election_notice(
            {"coordinator": "small", "community_size": 5, "phase": 1})
        ack_big = overlay.handle_election_notice(
            {"coordinator": "big", "community_size": 50, "phase": 2})
        ack_small = overlay.handle_election_notice(
            {"coordinator": "small", "community_size": 5, "phase": 2})
        assert ack_big["ack"] is False
        assert ack_small["ack"] is True
        assert ack_small["rank"] == vo.stack("agrid01").site.rank()


class TestFailureRecovery:
    def failing_group(self, vo, groups):
        victim = next(sp for sp, members in groups.items() if len(members) >= 3)
        survivors = [m for m in groups[victim] if m != victim]
        return victim, survivors

    def test_reelection_after_super_peer_crash(self):
        vo = make_vo(9, group_size=3)
        groups = vo.form_overlay()
        victim, survivors = self.failing_group(vo, groups)
        vo.stack(victim).site.fail()
        vo.sim.run(until=vo.sim.now + 120)
        new_views = {m: vo.rdm(m).overlay.view for m in survivors}
        new_sp = {view.super_peer for view in new_views.values()}
        assert len(new_sp) == 1
        new_sp = new_sp.pop()
        assert new_sp != victim
        assert new_sp in survivors
        # the winner is the highest-ranked survivor
        ranks = {m: vo.stack(m).site.rank() for m in survivors}
        assert new_sp == max(ranks, key=ranks.get)
        # the epoch advanced so stale assignments are rejected
        assert all(v.epoch > 0 for v in new_views.values())

    def test_other_super_peers_learn_of_takeover(self):
        vo = make_vo(9, group_size=3)
        groups = vo.form_overlay()
        victim, survivors = self.failing_group(vo, groups)
        other_sps = [sp for sp in groups if sp != victim]
        vo.stack(victim).site.fail()
        vo.sim.run(until=vo.sim.now + 150)
        new_sp = vo.rdm(survivors[0]).overlay.view.super_peer
        for sp in other_sps:
            sp_list = vo.rdm(sp).overlay.view.super_peers
            assert new_sp in sp_list
            assert victim not in sp_list

    def test_discovery_works_after_recovery(self):
        vo = make_vo(9, group_size=3)
        groups = vo.form_overlay()
        victim, survivors = self.failing_group(vo, groups)
        vo.stack(victim).site.fail()
        vo.sim.run(until=vo.sim.now + 150)
        type_xml = ('<ActivityTypeEntry name="Post" kind="concrete">'
                    "<Domain>x</Domain></ActivityTypeEntry>")
        vo.run_process(vo.client_call(survivors[0], "register_type",
                                      payload={"xml": type_xml}))
        wire = vo.run_process(vo.client_call(survivors[-1], "lookup_type",
                                             payload="Post"))
        assert wire is not None

    def test_peer_crash_does_not_disturb_super_peer(self):
        vo = make_vo(9, group_size=3)
        groups = vo.form_overlay()
        super_peer = next(sp for sp, members in groups.items()
                          if len(members) >= 3)
        plain_member = [m for m in groups[super_peer] if m != super_peer][0]
        vo.stack(plain_member).site.fail()
        vo.sim.run(until=vo.sim.now + 120)
        assert vo.rdm(super_peer).overlay.is_super_peer
        assert vo.rdm(super_peer).overlay.view.super_peer == super_peer

    def test_reelection_counter(self):
        vo = make_vo(6, group_size=3)
        groups = vo.form_overlay()
        victim, survivors = self.failing_group(vo, groups)
        vo.stack(victim).site.fail()
        vo.sim.run(until=vo.sim.now + 150)
        new_sp = vo.rdm(survivors[0]).overlay.view.super_peer
        assert vo.rdm(new_sp).overlay.reelections >= 1
