"""Additional un-deployment unit coverage."""

import pytest

from repro.glare.model import ActivityDeployment, DeploymentKind, DeploymentStatus
from repro.vo import build_vo

TYPE_XML = (
    '<ActivityTypeEntry name="UApp" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


@pytest.fixture()
def vo():
    vo = build_vo(n_sites=2, seed=331, monitors=False)
    vo.form_overlay()
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": TYPE_XML}))
    return vo


def add_deployment(vo, name="uapp", home="/opt/deployments/uapp"):
    deployment = ActivityDeployment(
        name=name, type_name="UApp", kind=DeploymentKind.EXECUTABLE,
        site="agrid01", path=f"{home}/bin/{name}", home=home,
        status=DeploymentStatus.ACTIVE,
    )
    vo.stack("agrid01").site.fs.put_file(deployment.path, size=50,
                                         executable=True)
    vo.run_process(vo.client_call(
        "agrid01", "register_deployment",
        payload={"xml": deployment.to_xml().to_string()},
    ))
    return deployment


def test_remove_files_false_keeps_installation(vo):
    deployment = add_deployment(vo)
    out = vo.run_process(vo.client_call(
        "agrid01", "undeploy",
        payload={"key": deployment.key, "remove_files": False},
    ))
    assert out["files_removed"] == 0
    assert deployment.key not in vo.stack("agrid01").adr.deployments
    # the binary survives on disk for manual cleanup / re-registration
    assert vo.stack("agrid01").site.fs.exists(deployment.path)


def test_undeploy_shared_home_removes_siblings_files(vo):
    first = add_deployment(vo, name="tool_a")
    second = add_deployment(vo, name="tool_b")
    vo.run_process(vo.client_call("agrid01", "undeploy",
                                  payload={"key": first.key}))
    fs = vo.stack("agrid01").site.fs
    # removing the home wiped both binaries (documented behaviour) ...
    assert not fs.exists(first.path)
    assert not fs.exists(second.path)
    # ... but only the requested registration was removed
    assert second.key in vo.stack("agrid01").adr.deployments


def test_undeploy_type_with_remove_type(vo):
    add_deployment(vo)
    out = vo.run_process(vo.client_call(
        "agrid01", "undeploy_type",
        payload={"type": "UApp", "remove_type": True},
    ))
    assert out["type_removed"] is True
    assert vo.stack("agrid01").atr.find_type("UApp") is None
    assert vo.stack("agrid01").adr.local_deployments_for("UApp") == []


def test_undeploy_type_no_deployments_is_noop(vo):
    out = vo.run_process(vo.client_call(
        "agrid01", "undeploy_type", payload={"type": "UApp"},
    ))
    assert out["deployments_removed"] == []
    assert out["type_removed"] is False
