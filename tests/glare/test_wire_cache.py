"""Tests for the cached wire forms on activity types and deployments.

``wire_xml()``/``wire_size()`` memoize the serialized XML so the hot
lookup path stops re-serializing per request; the cache must stay
byte-identical to a fresh ``to_xml().to_string()`` and must be dropped
whenever a serialized field mutates (the status-monitor update path).
"""

from repro.glare.model import (
    ActivityDeployment,
    ActivityType,
    DeploymentKind,
    DeploymentStatus,
    TypeKind,
)


def _deployment(**overrides):
    fields = dict(
        name="povray-1",
        type_name="JPOVray",
        kind=DeploymentKind.EXECUTABLE,
        site="hafner",
        path="/opt/povray/bin/povray",
        home="/opt/povray",
        status=DeploymentStatus.ACTIVE,
    )
    fields.update(overrides)
    return ActivityDeployment(**fields)


class TestWireCache:
    def test_wire_xml_matches_fresh_serialization(self):
        at = ActivityType(name="POVray", kind=TypeKind.CONCRETE,
                          domain="imaging", description="ray tracer",
                          deployment_names=["povray"])
        assert at.wire_xml() == at.to_xml().to_string()
        dep = _deployment()
        assert dep.wire_xml() == dep.to_xml().to_string()

    def test_wire_size_is_len_of_wire_xml(self):
        dep = _deployment()
        assert dep.wire_size() == len(dep.wire_xml())

    def test_cache_hit_returns_same_object(self):
        dep = _deployment()
        assert dep.wire_xml() is dep.wire_xml()

    def test_invalidate_drops_cache(self):
        dep = _deployment()
        stale = dep.wire_xml()
        dep.status = DeploymentStatus.FAILED
        # mutation without invalidation leaves the stale bytes (the
        # documented contract: mutators must call invalidate_wire_cache)
        assert dep.wire_xml() is stale
        dep.invalidate_wire_cache()
        fresh = dep.wire_xml()
        assert fresh != stale
        assert 'status="failed"' in fresh
        assert fresh == dep.to_xml().to_string()

    def test_invalidate_without_cache_is_noop(self):
        dep = _deployment()
        dep.invalidate_wire_cache()  # nothing cached yet; must not raise
        assert dep.wire_xml() == dep.to_xml().to_string()

    def test_update_status_op_refreshes_wire_form(self):
        # End-to-end through the registry op that mutates deployments —
        # the only post-registration mutation site of a wire-cached object.
        from repro.glare.registry import (
            ActivityDeploymentRegistry,
            ActivityTypeRegistry,
            ADR_SERVICE,
            ATR_SERVICE,
        )
        from repro.net.network import Network
        from repro.net.topology import Topology
        from repro.simkernel import Simulator

        sim = Simulator(seed=41)
        topo = Topology.full_mesh(["s0", "s1"], latency=0.003, bandwidth=1e7)
        net = Network(sim, topo)
        net.add_node("s0", cores=2)
        net.add_node("s1", cores=2)
        atr = ActivityTypeRegistry(net, "s0")
        adr = ActivityDeploymentRegistry(net, "s0", atr=atr)

        def call(service, method, payload):
            def client():
                return (yield from net.call("s1", "s0", service, method,
                                            payload=payload))

            proc = sim.process(client())
            sim.run(until=proc)
            return proc.value

        type_xml = ActivityType(
            name="JPOVray", kind=TypeKind.CONCRETE, domain="imaging"
        ).to_xml().to_string()
        call(ATR_SERVICE, "register_type", {"xml": type_xml})
        dep = _deployment(site="s0")
        call(ADR_SERVICE, "register_deployment",
             {"xml": dep.to_xml().to_string()})

        stored = adr.deployments["s0:povray-1"]
        before = stored.wire_xml()
        assert 'status="active"' in before
        call(ADR_SERVICE, "update_status",
             {"key": stored.key, "status": "failed"})
        after = stored.wire_xml()
        assert after != before
        assert 'status="failed"' in after
        assert after == stored.to_xml().to_string()
