"""Unit tests for the GRAM job-manager substrate."""

import pytest

from repro.gram import GramService, JobSpec, JobState
from repro.gram.service import UnknownJob
from repro.net import Network, Topology
from repro.simkernel import Simulator


def make_world(overhead=0.5):
    sim = Simulator(seed=5)
    topo = Topology.full_mesh(["client", "exec"], latency=0.002, bandwidth=1e7)
    net = Network(sim, topo)
    net.add_node("client")
    net.add_node("exec", cores=2)
    gram = GramService(net, "exec", submission_overhead=overhead)
    return sim, net, gram


def run_client(sim, body):
    proc = sim.process(body)
    sim.run()
    assert proc.ok
    return proc.value


class TestSubmission:
    def test_submit_and_wait(self):
        sim, net, gram = make_world()

        def client():
            job_id = yield from net.call(
                "client", "exec", "gram", "submit", payload=JobSpec("make", cpu_demand=3.0)
            )
            snap = yield from net.call("client", "exec", "gram", "wait", payload=job_id)
            return snap

        snap = run_client(sim, client())
        assert snap["state"] == "done"
        assert snap["exit_code"] == 0
        assert snap["finished_at"] - snap["started_at"] == pytest.approx(3.0, abs=0.1)

    def test_submission_overhead_charged(self):
        sim, net, gram = make_world(overhead=2.0)

        def client():
            job_id = yield from net.call(
                "client", "exec", "gram", "submit", payload=JobSpec("true", cpu_demand=0.0)
            )
            return job_id

        run_client(sim, client())
        assert sim.now >= 2.0

    def test_failing_job_reports_failure(self):
        sim, net, gram = make_world()

        def client():
            job_id = yield from net.call(
                "client", "exec", "gram", "submit",
                payload=JobSpec("bad", cpu_demand=1.0, fail=True),
            )
            snap = yield from net.call("client", "exec", "gram", "wait", payload=job_id)
            return snap

        snap = run_client(sim, client())
        assert snap["state"] == "failed"
        assert snap["exit_code"] == 1

    def test_walltime_limit_kills_job(self):
        sim, net, gram = make_world()

        def client():
            job_id = yield from net.call(
                "client", "exec", "gram", "submit",
                payload=JobSpec("hang", cpu_demand=100.0, walltime_limit=2.0),
            )
            snap = yield from net.call("client", "exec", "gram", "wait", payload=job_id)
            return snap

        snap = run_client(sim, client())
        assert snap["state"] == "failed"
        assert "walltime" in snap["error"]

    def test_cancel_pending_job(self):
        sim, net, gram = make_world()

        def client():
            # Saturate both cores, then cancel a queued third job.
            ids = []
            for _ in range(3):
                job_id = yield from net.call(
                    "client", "exec", "gram", "submit",
                    payload=JobSpec("work", cpu_demand=50.0),
                )
                ids.append(job_id)
            yield from net.call("client", "exec", "gram", "cancel", payload=ids[2])
            snap = yield from net.call("client", "exec", "gram", "wait", payload=ids[2])
            return snap

        snap = run_client(sim, client())
        assert snap["state"] == "cancelled"

    def test_status_of_unknown_job(self):
        sim, net, gram = make_world()
        caught = []

        def client():
            try:
                yield from net.call("client", "exec", "gram", "status", payload=999999)
            except UnknownJob:
                caught.append(True)

        sim.process(client())
        sim.run()
        assert caught == [True]

    def test_concurrent_jobs_share_cores(self):
        sim, net, gram = make_world(overhead=0.0)

        def client():
            ids = []
            for _ in range(4):
                job_id = yield from net.call(
                    "client", "exec", "gram", "submit",
                    payload=JobSpec("work", cpu_demand=10.0),
                )
                ids.append(job_id)
            snaps = []
            for job_id in ids:
                snaps.append(
                    (yield from net.call("client", "exec", "gram", "wait", payload=job_id))
                )
            return snaps

        snaps = run_client(sim, client())
        assert all(s["state"] == "done" for s in snaps)
        # 4 jobs x 10s on 2 cores: about 20s total, not 10 and not 40.
        assert 18 < sim.now < 25

    def test_rejects_non_jobspec(self):
        sim, net, gram = make_world()
        caught = []

        def client():
            try:
                yield from net.call("client", "exec", "gram", "submit", payload="ls")
            except TypeError:
                caught.append(True)

        sim.process(client())
        sim.run()
        assert caught == [True]
