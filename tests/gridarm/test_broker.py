"""Tests for GridARM resource brokerage (load-aware ranking)."""

import pytest

from repro.glare.model import (
    ActivityDeployment,
    ActivityType,
    DeploymentKind,
    DeploymentStatus,
)
from repro.gridarm import ResourceBroker
from repro.vo import build_vo

TYPE_XML = (
    '<ActivityTypeEntry name="Solver" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


def deployment_on(site, name="solver"):
    return ActivityDeployment(
        name=name, type_name="Solver", kind=DeploymentKind.EXECUTABLE,
        site=site, path=f"/opt/{name}", status=DeploymentStatus.ACTIVE,
    )


@pytest.fixture()
def vo():
    vo = build_vo(n_sites=4, seed=191, monitors=False)
    vo.form_overlay()
    for site in vo.site_names:
        vo.stack(site).site.start_monitoring()
    return vo


def test_prefers_idle_site(vo):
    # load agrid02 heavily; agrid01 stays idle.  Hogs burn CPU in short
    # quanta (time-sliced processes) so the probe RPC still gets served.
    busy = vo.stack("agrid02").site

    def hog():
        for _ in range(1000):
            yield from busy.cpu.execute(0.5)

    for _ in range(8):
        vo.sim.process(hog())
    vo.sim.run(until=vo.sim.now + 120)  # let the load average climb

    broker = ResourceBroker(vo, "agrid00")
    candidates = [deployment_on("agrid01"), deployment_on("agrid02")]
    ranked = vo.run_process(broker.rank(candidates))
    assert [r.deployment.site for r in ranked] == ["agrid01", "agrid02"]
    assert ranked[0].load_per_core < ranked[1].load_per_core


def test_offline_site_dropped(vo):
    vo.stack("agrid03").site.fail()
    broker = ResourceBroker(vo, "agrid00")
    candidates = [deployment_on("agrid01"), deployment_on("agrid03")]
    ranked = vo.run_process(broker.rank(candidates))
    assert [r.deployment.site for r in ranked] == ["agrid01"]


def test_failed_deployment_penalised(vo):
    good = deployment_on("agrid01", "good")
    flaky = deployment_on("agrid01", "flaky")
    flaky.last_return_code = 1
    broker = ResourceBroker(vo, "agrid00")
    ranked = vo.run_process(broker.rank([flaky, good]))
    assert ranked[0].deployment.name == "good"
    assert ranked[1].penalty >= 10.0


def test_benchmark_discounts_load(vo):
    at = ActivityType.from_xml(TYPE_XML)
    at.benchmarks = {"Intel": 4.0}
    broker = ResourceBroker(vo, "agrid00")
    ranked = vo.run_process(broker.rank([deployment_on("agrid01")], at))
    assert ranked[0].benchmark == 4.0


def test_load_aware_scheduler_spreads_parallel_work(vo):
    """With identical deployments on two sites, a loaded site loses."""
    from repro.workflow import ActivityNode, Scheduler, Workflow

    for site in ("agrid01", "agrid02"):
        vo.run_process(vo.client_call(site, "register_type",
                                      payload={"xml": TYPE_XML}))
        deployment = deployment_on(site)
        vo.run_process(vo.client_call(
            site, "register_deployment",
            payload={"xml": deployment.to_xml().to_string()},
        ))
    busy = vo.stack("agrid01").site

    def hog():
        for _ in range(1000):
            yield from busy.cpu.execute(0.5)

    for _ in range(8):
        vo.sim.process(hog())
    vo.sim.run(until=vo.sim.now + 120)

    wf = Workflow("single")
    wf.add(ActivityNode("run", "Solver", demand=1.0))
    scheduler = Scheduler(vo, "agrid00", policy="load-aware")
    schedule = vo.run_process(scheduler.map_workflow(wf, auto_deploy=False))
    assert schedule.site_of("run") == "agrid02"


def test_unknown_policy_rejected(vo):
    from repro.workflow import Scheduler, WorkflowError

    with pytest.raises(WorkflowError):
        Scheduler(vo, "agrid00", policy="random")
