"""Unit tests for GridARM leasing (paper §3.2, Deployment Leasing)."""

import pytest

from repro.glare.errors import LeaseError, NotAuthorized
from repro.gridarm import LeaseKind, ReservationService
from repro.net.network import Network
from repro.net.topology import Topology
from repro.simkernel import Simulator


@pytest.fixture()
def world():
    sim = Simulator(seed=91)
    topo = Topology.full_mesh(["host", "client"], latency=0.002, bandwidth=1e7)
    net = Network(sim, topo)
    net.add_node("host")
    net.add_node("client")
    service = ReservationService(net, "host")
    return sim, net, service


def authorize(sim, service, key, ticket_id, client="client"):
    proc = sim.process(service.authorize_instantiation(key, ticket_id, client))
    sim.run(until=proc)
    return proc.value


class TestExclusiveLeases:
    def test_reserve_and_authorize(self, world):
        sim, net, service = world
        ticket = service.make_lease("s:app", "client", 0.0, 100.0)
        authorize(sim, service, "s:app", ticket.ticket_id)  # no exception
        service.instantiation_finished("s:app", ticket.ticket_id)

    def test_no_ticket_rejected_during_lease(self, world):
        sim, net, service = world
        service.make_lease("s:app", "client", 0.0, 100.0)
        with pytest.raises(NotAuthorized, match="ticket is required"):
            authorize(sim, service, "s:app", None)

    def test_unleased_deployment_freely_usable(self, world):
        sim, net, service = world
        authorize(sim, service, "s:app", None)  # no lease: no exception

    def test_overlapping_exclusive_rejected(self, world):
        sim, net, service = world
        service.make_lease("s:app", "a", 0.0, 100.0)
        with pytest.raises(LeaseError, match="exclusively leased"):
            service.make_lease("s:app", "b", 50.0, 150.0)

    def test_non_overlapping_exclusive_allowed(self, world):
        sim, net, service = world
        service.make_lease("s:app", "a", 0.0, 100.0)
        ticket = service.make_lease("s:app", "b", 100.0, 200.0)
        assert ticket.ticket_id

    def test_expired_ticket_rejected(self, world):
        sim, net, service = world
        ticket = service.make_lease("s:app", "client", 0.0, 10.0)
        sim.run(until=50.0)
        # the lease itself has ended: deployment is freely usable again
        authorize(sim, service, "s:app", None)

    def test_wrong_ticket_rejected(self, world):
        sim, net, service = world
        service.make_lease("s:app", "client", 0.0, 100.0)
        with pytest.raises(NotAuthorized):
            authorize(sim, service, "s:app", 999999)

    def test_future_lease_not_yet_active(self, world):
        sim, net, service = world
        ticket = service.make_lease("s:app", "client", 50.0, 100.0)
        # before the window opens the deployment is freely usable
        authorize(sim, service, "s:app", None)
        sim.run(until=60.0)
        with pytest.raises(NotAuthorized):
            authorize(sim, service, "s:app", None)
        authorize(sim, service, "s:app", ticket.ticket_id)


class TestSharedLeases:
    def test_concurrency_limit_enforced(self, world):
        sim, net, service = world
        t1 = service.make_lease("s:app", "a", 0.0, 100.0,
                                kind=LeaseKind.SHARED, max_concurrent=2)
        t2 = service.make_lease("s:app", "b", 0.0, 100.0,
                                kind=LeaseKind.SHARED, max_concurrent=2)
        t3 = service.make_lease("s:app", "c", 0.0, 100.0,
                                kind=LeaseKind.SHARED, max_concurrent=2)
        authorize(sim, service, "s:app", t1.ticket_id)
        authorize(sim, service, "s:app", t2.ticket_id)
        with pytest.raises(NotAuthorized, match="concurrency limit"):
            authorize(sim, service, "s:app", t3.ticket_id)
        # a slot frees up: the third holder can now run
        service.instantiation_finished("s:app", t1.ticket_id)
        authorize(sim, service, "s:app", t3.ticket_id)

    def test_shared_and_exclusive_conflict(self, world):
        sim, net, service = world
        service.make_lease("s:app", "a", 0.0, 100.0, kind=LeaseKind.SHARED,
                           max_concurrent=4)
        with pytest.raises(LeaseError):
            service.make_lease("s:app", "b", 10.0, 60.0)

    def test_invalid_parameters(self, world):
        sim, net, service = world
        with pytest.raises(LeaseError):
            service.make_lease("s:app", "a", 100.0, 100.0)
        with pytest.raises(LeaseError):
            service.make_lease("s:app", "a", 0.0, 10.0,
                               kind=LeaseKind.SHARED, max_concurrent=0)


class TestRemoteOperations:
    def call(self, sim, net, method, payload):
        def client():
            value = yield from net.call("client", "host",
                                        "gridarm-reservation", method,
                                        payload=payload)
            return value

        proc = sim.process(client())
        sim.run(until=proc)
        return proc.value

    def test_reserve_cancel_list(self, world):
        sim, net, service = world
        ticket = self.call(sim, net, "reserve",
                           {"key": "s:app", "start": 0.0, "end": 100.0,
                            "kind": "shared", "max_concurrent": 3})
        assert ticket["kind"] == "shared"
        leases = self.call(sim, net, "list_leases", "s:app")
        assert len(leases) == 1
        assert leases[0]["tickets"] == 1
        out = self.call(sim, net, "cancel", ticket["ticket_id"])
        assert out["cancelled"] is True
        leases = self.call(sim, net, "list_leases", "s:app")
        assert leases[0]["tickets"] == 0

    def test_cancel_unknown_ticket(self, world):
        sim, net, service = world
        out = self.call(sim, net, "cancel", 424242)
        assert out["cancelled"] is False
