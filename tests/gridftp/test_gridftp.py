"""Unit tests for the GridFTP transfer substrate."""

import pytest

from repro.gridftp import GridFtpService, TransferError, UrlCatalog, install_gridftp
from repro.net import Network, Topology
from repro.simkernel import Simulator
from repro.site import GridSite, SiteDescription


def make_world(bandwidth=1e6):
    sim = Simulator(seed=7)
    topo = Topology.full_mesh(["src", "dst", "origin"], latency=0.005, bandwidth=bandwidth)
    net = Network(sim, topo)
    sites = {
        name: GridSite(net, SiteDescription(name=name)) for name in ("src", "dst", "origin")
    }
    catalog = UrlCatalog()
    services = install_gridftp(net, sites.values(), url_catalog=catalog)
    return sim, net, sites, services, catalog


def run(sim, gen):
    proc = sim.process(gen)
    sim.run()
    assert proc.ok, proc.value
    return proc.value


class TestFetch:
    def test_remote_fetch_creates_file(self):
        sim, net, sites, services, _ = make_world()
        sites["src"].fs.put_file("/data/app.tgz", size=500_000, md5sum="abc")

        def client():
            entry = yield from services["dst"].fetch("src", "/data/app.tgz", "/tmp/app.tgz")
            return entry

        entry = run(sim, client())
        assert sites["dst"].fs.exists("/tmp/app.tgz")
        assert entry.size == 500_000
        assert entry.md5sum == "abc"

    def test_transfer_time_scales_with_size(self):
        durations = {}
        for size in (100_000, 2_000_000):
            sim, net, sites, services, _ = make_world(bandwidth=1e6)
            sites["src"].fs.put_file("/data/f", size=size)

            def client():
                yield from services["dst"].fetch("src", "/data/f", "/tmp/f")

            run(sim, client())
            durations[size] = sim.now
        assert durations[2_000_000] > durations[100_000] + 1.0

    def test_md5_verification(self):
        sim, net, sites, services, _ = make_world()
        sites["src"].fs.put_file("/data/f", size=100, md5sum="realsum")
        caught = []

        def client():
            try:
                yield from services["dst"].fetch(
                    "src", "/data/f", "/tmp/f", expected_md5="othersum"
                )
            except TransferError as e:
                caught.append(str(e))

        sim.process(client())
        sim.run()
        assert caught and "md5 mismatch" in caught[0]
        assert not sites["dst"].fs.exists("/tmp/f")

    def test_missing_source_raises(self):
        sim, net, sites, services, _ = make_world()
        caught = []

        def client():
            try:
                yield from services["dst"].fetch("src", "/data/nothing", "/tmp/x")
            except TransferError:
                caught.append(True)

        sim.process(client())
        sim.run()
        assert caught == [True]

    def test_local_fetch_no_network(self):
        sim, net, sites, services, _ = make_world()
        sites["dst"].fs.put_file("/data/f", size=10_000_000)

        def client():
            yield from services["dst"].fetch("dst", "/data/f", "/tmp/f")

        run(sim, client())
        # 10 MB at WAN bandwidth would take ~10s; local copy is near-instant.
        assert sim.now < 1.0

    def test_transfer_records_kept(self):
        sim, net, sites, services, _ = make_world()
        sites["src"].fs.put_file("/data/f", size=1000)

        def client():
            yield from services["dst"].fetch("src", "/data/f", "/tmp/f")

        run(sim, client())
        assert len(services["dst"].transfers) == 1
        record = services["dst"].transfers[0]
        assert record.source == "src"
        assert record.duration > 0
        assert services["dst"].bytes_moved == 1000


class TestUrlCatalog:
    def test_fetch_url(self):
        sim, net, sites, services, catalog = make_world()
        sites["origin"].fs.put_file("/www/povlinux-3.6.tgz", size=9_000_000, md5sum="m")
        catalog.publish(
            "http://www.povray.org/povlinux-3.6.tgz", "origin", "/www/povlinux-3.6.tgz"
        )

        def client():
            entry = yield from services["dst"].fetch_url(
                "http://www.povray.org/povlinux-3.6.tgz", "/tmp/povray.tgz",
                expected_md5="m",
            )
            return entry

        entry = run(sim, client())
        assert entry.source_url.startswith("http://")
        assert sites["dst"].fs.get_file("/tmp/povray.tgz").size == 9_000_000

    def test_unknown_url_raises(self):
        sim, net, sites, services, catalog = make_world()
        caught = []

        def client():
            try:
                yield from services["dst"].fetch_url("http://nowhere/x.tgz", "/tmp/x")
            except TransferError:
                caught.append(True)

        sim.process(client())
        sim.run()
        assert caught == [True]
