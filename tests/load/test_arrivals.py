"""Contract tests for the seeded arrival-process models."""

import numpy as np
import pytest

from repro.load.arrivals import (
    DiurnalRate,
    MMPPProcess,
    NHPoissonProcess,
    ParetoSessions,
    PoissonProcess,
    StepRate,
    arrival_stream,
)

HORIZON = 60.0
SEED = 7


def _all_models():
    return [
        PoissonProcess(200.0),
        NHPoissonProcess(DiurnalRate(150.0, period=HORIZON,
                                     regions=((0.0, 0.6), (20.0, 0.4)))),
        NHPoissonProcess(StepRate(100.0, 800.0, 20.0, 30.0), name="nhpp-step"),
        MMPPProcess(rates=(40.0, 400.0), sojourns=(10.0, 2.0)),
        ParetoSessions(PoissonProcess(20.0, name="session-starts")),
    ]


class TestArrivalStream:
    def test_matches_rng_registry_derivation(self):
        # same derivation as RngRegistry.stream: identical (seed, name)
        # pairs must yield identical draws even without a simulator
        from repro.simkernel.rng import RngRegistry

        direct = arrival_stream(123, "workload").random(8)
        registry = RngRegistry(123).stream("workload").random(8)
        assert np.array_equal(direct, registry)

    def test_distinct_names_decorrelate(self):
        a = arrival_stream(123, "alpha").random(8)
        b = arrival_stream(123, "beta").random(8)
        assert not np.array_equal(a, b)


class TestModelContracts:
    @pytest.mark.parametrize("model", _all_models(),
                             ids=lambda m: type(m).__name__)
    def test_same_seed_identical_trace(self, model):
        first = model.sample(HORIZON, SEED)
        second = model.sample(HORIZON, SEED)
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("model", _all_models(),
                             ids=lambda m: type(m).__name__)
    def test_different_seed_different_trace(self, model):
        assert not np.array_equal(model.sample(HORIZON, SEED),
                                  model.sample(HORIZON, SEED + 1))

    @pytest.mark.parametrize("model", _all_models(),
                             ids=lambda m: type(m).__name__)
    def test_sorted_float64_within_horizon(self, model):
        times = model.sample(HORIZON, SEED)
        assert times.dtype == np.float64
        assert times.size > 0
        assert np.all(np.diff(times) >= 0.0)
        assert times[0] >= 0.0
        assert times[-1] < HORIZON

    def test_poisson_rate_sanity(self):
        times = PoissonProcess(500.0).sample(100.0, SEED)
        # 50,000 expected, sigma ~224: a 5-sigma band never flakes
        assert abs(times.size - 50_000) < 5 * np.sqrt(50_000)

    def test_poisson_zero_rate_is_empty(self):
        assert PoissonProcess(0.0).sample(HORIZON, SEED).size == 0

    def test_poisson_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(-1.0).sample(HORIZON, SEED)


class TestDiurnalRate:
    def test_peak_rate_bounds_rate_function(self):
        rate = DiurnalRate(100.0, amplitude=0.8, period=40.0,
                           regions=((0.0, 0.5), (13.0, 0.3), (27.0, 0.2)))
        t = np.linspace(0.0, 120.0, 10_001)
        assert np.all(rate(t) <= rate.peak_rate + 1e-9)

    def test_regions_stagger_the_peaks(self):
        early = DiurnalRate(100.0, period=40.0, regions=((0.0, 1.0),))
        late = DiurnalRate(100.0, period=40.0, regions=((10.0, 1.0),))
        t = np.linspace(0.0, 40.0, 401)
        assert abs(t[np.argmax(early(t))] - t[np.argmax(late(t))]) > 5.0

    def test_rejects_amplitude_above_one(self):
        with pytest.raises(ValueError):
            DiurnalRate(100.0, amplitude=1.5)


class TestStepRate:
    def test_spike_window_half_open(self):
        rate = StepRate(10.0, 100.0, 5.0, 8.0)
        values = rate(np.array([4.999, 5.0, 7.999, 8.0]))
        assert list(values) == [10.0, 100.0, 100.0, 10.0]
        assert rate.peak_rate == 100.0


class TestMMPP:
    def test_burst_state_dominates_arrivals(self):
        # equal time share per state on average, 10x the rate in bursts
        times = MMPPProcess(rates=(20.0, 200.0), sojourns=(5.0, 5.0),
                            name="mmpp-burst").sample(200.0, SEED)
        mean_rate = times.size / 200.0
        assert mean_rate > 60.0  # far above the calm rate alone


class TestParetoSessions:
    def test_first_request_lands_on_session_start(self):
        inner = PoissonProcess(5.0, name="session-starts")
        model = ParetoSessions(inner, mean_gap=2.0)
        starts = inner.sample(HORIZON, SEED)
        times = model.sample(HORIZON, SEED)
        # every session start (within horizon) appears in the trace
        assert np.all(np.isin(starts[starts < HORIZON], times))

    def test_sessions_inflate_volume(self):
        inner = PoissonProcess(5.0, name="session-starts")
        starts = inner.sample(HORIZON, SEED)
        times = ParetoSessions(inner).sample(HORIZON, SEED)
        assert times.size > starts.size
