"""Cohort injection: quantisation, chaining, and the O(1) standing state."""

import numpy as np
import pytest

from repro.load.arrivals import PoissonProcess
from repro.load.inject import CohortInjector, NaiveInjector, quantize_ticks
from repro.simkernel import Simulator


class TestQuantizeTicks:
    def test_never_early(self):
        times = PoissonProcess(300.0).sample(20.0, 3)
        ticks = quantize_ticks(times, 0.005)
        assert np.all(ticks * 0.005 >= times)

    def test_delay_bounded_by_one_tick(self):
        times = PoissonProcess(300.0).sample(20.0, 3)
        ticks = quantize_ticks(times, 0.005)
        assert np.all(ticks * 0.005 - times < 0.005 + 1e-12)

    def test_exact_grid_points_stay_put(self):
        assert list(quantize_ticks(np.array([0.0, 0.25, 1.0]), 0.25)) == [0, 1, 4]

    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError):
            quantize_ticks(np.array([1.0]), 0.0)


class TestCohortInjector:
    def test_fires_every_arrival_once_in_order(self):
        times = PoissonProcess(500.0).sample(10.0, 11)
        sim = Simulator(seed=11)
        fired = []
        injector = CohortInjector(sim, times, lambda t, i: fired.append((t, i)),
                                  tick=0.01)
        injector.start()
        sim.run()
        assert len(fired) == times.size == injector.fired
        assert [i for _, i in fired] == list(range(times.size))
        assert all(b[0] >= a[0] for a, b in zip(fired, fired[1:]))

    def test_clock_matches_cohort_time(self):
        times = np.array([0.1, 0.1001, 0.5, 2.0])
        sim = Simulator(seed=1)
        seen = []
        injector = CohortInjector(sim, times, lambda t, i: seen.append((t, sim.now)),
                                  tick=0.25)
        injector.start()
        sim.run()
        assert [t for t, _ in seen] == [0.25, 0.25, 0.5, 2.0]
        assert all(now == pytest.approx(t, abs=1e-12) for t, now in seen)

    def test_one_pending_timeout_at_a_time(self):
        # the whole point of chaining: standing kernel state is O(1),
        # not O(N) — scheduling 10^4 arrivals must not allocate 10^4
        # timeouts up front
        times = PoissonProcess(2_000.0).sample(5.0, 5)
        assert times.size > 5_000
        sim = Simulator(seed=5)
        injector = CohortInjector(sim, times, lambda t, i: None, tick=0.001)
        injector.start()
        assert len(sim._buckets) <= 1  # one pending cohort timeout

        naive_sim = Simulator(seed=5)
        NaiveInjector(naive_sim, times, lambda t, i: None, tick=0.001).start()
        assert len(naive_sim._buckets) > 1_000  # the O(N) shape it replaces

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError):
            CohortInjector(Simulator(seed=1), np.array([2.0, 1.0]),
                           lambda t, i: None)

    def test_empty_trace_is_a_noop(self):
        sim = Simulator(seed=1)
        injector = CohortInjector(sim, np.empty(0), lambda t, i: None)
        injector.start()
        sim.run()
        assert injector.fired == 0 and injector.cohorts == 0

    def test_past_times_fire_immediately(self):
        # content setup advances the clock before injection starts;
        # already-due cohorts must fire at the current instant, never
        # travel backwards
        sim = Simulator(seed=1)

        def setup():
            yield sim.timeout(3.0)

        sim.process(setup())
        sim.run()
        fired = []
        injector = CohortInjector(sim, np.array([1.0, 2.0, 5.0]),
                                  lambda t, i: fired.append(sim.now), tick=0.5)
        injector.start()
        sim.run()
        assert fired == [3.0, 3.0, 5.0]


class TestNaiveEquivalence:
    def test_same_fire_sequence(self):
        times = PoissonProcess(400.0).sample(8.0, 13)
        runs = []
        for cls in (CohortInjector, NaiveInjector):
            sim = Simulator(seed=13)
            fired = []
            injector = cls(sim, times, lambda t, i: fired.append((t, i)),
                           tick=0.0078125)  # dyadic: exact float grid
            injector.start()
            sim.run()
            assert injector.fired == times.size
            runs.append(fired)
        assert runs[0] == runs[1]

    def test_downstream_process_trace_identical(self):
        times = PoissonProcess(200.0).sample(6.0, 17)

        def run(cls):
            sim = Simulator(seed=17)
            log = []

            def fire(t, i):
                def worker():
                    yield sim.timeout(0.125)
                    log.append((round(sim.now, 9), i))

                sim.process(worker())

            injector = cls(sim, times, fire, tick=0.015625)
            injector.start()
            sim.run()
            return log

        assert run(CohortInjector) == run(NaiveInjector)
