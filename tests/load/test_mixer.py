"""Traffic mix assignment and open-loop driver outcome classification."""

import numpy as np
import pytest

from repro.load.mixer import OpenLoopDriver, TrafficMix
from repro.load.stats import StreamStats
from repro.net.interceptors import Overloaded, RpcTimeout


class TestTrafficMix:
    def test_deterministic_assignment(self):
        mix = TrafficMix({"resolve": 0.9, "provision": 0.06, "enact": 0.04})
        assert np.array_equal(mix.assign(5_000, 3), mix.assign(5_000, 3))
        assert not np.array_equal(mix.assign(5_000, 3), mix.assign(5_000, 4))

    def test_ops_sorted_and_weights_normalized(self):
        mix = TrafficMix({"b": 2.0, "a": 6.0, "c": 2.0})
        assert mix.ops == ("a", "b", "c")
        assert mix.weights == pytest.approx((0.6, 0.2, 0.2))

    def test_assignment_tracks_weights(self):
        mix = TrafficMix({"resolve": 0.9, "enact": 0.1})
        assignment = mix.assign(20_000, 7)
        resolve_share = np.mean(assignment == mix.ops.index("resolve"))
        assert resolve_share == pytest.approx(0.9, abs=0.02)

    def test_rejects_empty_or_zero_weights(self):
        with pytest.raises(ValueError):
            TrafficMix({})
        with pytest.raises(ValueError):
            TrafficMix({"a": 0.0})


class _FakeSim:
    """Drives the driver's request generator to completion inline."""

    def __init__(self):
        self.now = 0.0

    def process(self, generator):
        try:
            while True:
                next(generator)
        except StopIteration:
            pass


class _FakeVO:
    def __init__(self):
        self.sim = _FakeSim()


def _outcome_call(error):
    def make_call(op, index):
        if error is not None:
            raise error
        if False:  # pragma: no cover - generator shape
            yield
        return "ok"

    return make_call


class TestOpenLoopDriver:
    @pytest.mark.parametrize("error,field", [
        (None, "completed"),
        (Overloaded("shed"), "shed"),
        (RpcTimeout("deadline"), "timeouts"),
        (RuntimeError("boom"), "failed"),
    ])
    def test_outcome_classification(self, error, field):
        stats = StreamStats(window=5.0)
        driver = OpenLoopDriver(_FakeVO(), stats)
        driver.fire("resolve", 1.0, 0, _outcome_call(error))
        assert getattr(stats.ops["resolve"], field) == 1
        assert stats.offered == 1
        assert stats.digest.n == 1

    def test_warmup_arrivals_run_but_are_not_measured(self):
        stats = StreamStats(window=5.0)
        driver = OpenLoopDriver(_FakeVO(), stats, warmup=10.0)
        driver.fire("resolve", 9.9, 0, _outcome_call(None))
        driver.fire("resolve", 10.0, 1, _outcome_call(None))
        assert driver.spawned == 2
        assert stats.offered == 1  # only the post-warmup arrival counted
        assert stats.digest.n == 1

    def test_single_attempt_policy(self):
        driver = OpenLoopDriver(_FakeVO(), StreamStats(), request_timeout=4.0)
        assert driver.retry.attempts == 1
        assert driver.retry.per_try_timeout == 4.0
