"""Streaming stats: fixed footprint, exact totals, commutative merges."""

import pytest

from repro.load.stats import (
    CommutativeDigest,
    LatencyDigest,
    OpStats,
    StreamStats,
)
from repro.obs.metrics import HISTOGRAM_BOUNDS


class TestLatencyDigest:
    def test_fixed_size_state(self):
        digest = LatencyDigest()
        for i in range(50_000):
            digest.observe(1e-5 * (i % 997 + 1))
        assert len(digest.counts) == len(HISTOGRAM_BOUNDS) + 1
        assert digest.count == 50_000

    def test_mean_is_exact_integer_total(self):
        digest = LatencyDigest()
        for value in (0.001, 0.002, 0.003):
            digest.observe(value)
        assert digest.total_ns == 6_000_000
        assert digest.mean == pytest.approx(0.002)

    def test_percentile_matches_obs_histogram(self):
        from repro.obs.metrics import Histogram

        values = [1e-5 * (i % 313 + 1) * 3.7 for i in range(2_000)]
        digest = LatencyDigest()
        histogram = Histogram("h", {})
        for value in values:
            digest.observe(value)
            histogram.observe(value)
        for q in (0.5, 0.9, 0.99, 0.999):
            assert digest.percentile(q) == histogram.percentile(q)

    def test_min_max_clamping(self):
        digest = LatencyDigest()
        digest.observe(0.5)
        assert digest.p50 == 0.5 == digest.p999
        assert digest.min == digest.max == 0.5

    def test_merge_equals_single_stream(self):
        values = [0.0001 * (i % 41 + 1) for i in range(400)]
        whole = LatencyDigest()
        for value in values:
            whole.observe(value)
        left, right = LatencyDigest(), LatencyDigest()
        for value in values[:137]:
            left.observe(value)
        for value in values[137:]:
            right.observe(value)
        left.merge(right)
        assert left.fingerprint() == whole.fingerprint()
        assert left.mean == whole.mean

    def test_empty_digest_reports_zero(self):
        digest = LatencyDigest()
        assert digest.mean == 0.0
        assert digest.percentile(0.99) == 0.0


class TestCommutativeDigest:
    def test_order_independent(self):
        records = [f"record-{i}" for i in range(200)]
        forward, backward = CommutativeDigest(), CommutativeDigest()
        forward.fold_many(records)
        backward.fold_many(reversed(records))
        assert forward.hexdigest() == backward.hexdigest()

    def test_merge_in_any_shard_split(self):
        records = [f"r{i}" for i in range(90)]
        whole = CommutativeDigest()
        whole.fold_many(records)
        for cut in (1, 30, 89):
            a, b = CommutativeDigest(), CommutativeDigest()
            a.fold_many(records[:cut])
            b.fold_many(records[cut:])
            b.merge(a)  # merge direction must not matter either
            assert b.hexdigest() == whole.hexdigest()

    def test_multiset_sensitive(self):
        a, b = CommutativeDigest(), CommutativeDigest()
        a.fold_many(["x", "y"])
        b.fold_many(["x", "x"])
        assert a.hexdigest() != b.hexdigest()


class TestStreamStats:
    def _populate(self, stats, offset=0):
        for i in range(offset, offset + 60):
            op = ("resolve", "provision", "enact")[i % 3]
            t = 0.5 * i
            if i % 7 == 0:
                stats.shed(op, t)
            elif i % 11 == 0:
                stats.timeout(op, t)
            else:
                stats.ok(op, 0.001 * (i % 9 + 1), t)
            stats.digest.fold(f"{op}|{i}")

    def test_totals_and_windows(self):
        stats = StreamStats(window=5.0)
        self._populate(stats)
        assert stats.offered == 60
        assert stats.completed + stats.shed_total + stats.timeout_total == 60
        series = stats.goodput_series()
        assert series == sorted(series)
        assert all(rate >= 0.0 for _, rate in series)

    def test_merge_order_independent_fingerprint(self):
        whole = StreamStats(window=5.0)
        self._populate(whole, 0)
        self._populate(whole, 60)

        a, b = StreamStats(window=5.0), StreamStats(window=5.0)
        self._populate(a, 0)
        self._populate(b, 60)
        b.merge(a)  # reversed merge order vs serial fill
        assert b.fingerprint() == whole.fingerprint()
        assert b.to_dict() == whole.to_dict()

    def test_merge_rejects_window_mismatch(self):
        with pytest.raises(ValueError):
            StreamStats(window=5.0).merge(StreamStats(window=2.0))

    def test_footprint_independent_of_arrival_count(self):
        small, large = StreamStats(window=5.0), StreamStats(window=5.0)
        for i in range(100):
            small.ok("resolve", 0.001, float(i % 50))
        for i in range(100_000):
            large.ok("resolve", 0.001, float(i % 50))
        assert large.footprint_bytes() == small.footprint_bytes()

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            StreamStats(window=0.0)


class TestOpStats:
    def test_offered_sums_outcomes(self):
        stats = OpStats()
        stats.completed, stats.shed, stats.timeouts, stats.failed = 5, 3, 2, 1
        assert stats.offered == 11
