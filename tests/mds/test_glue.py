"""Tests for GLUE-style publication and the manual-deployment path."""

import pytest

from repro.mds.glue import (
    publish_site_info,
    publish_software,
    query_software,
    query_software_path,
)
from repro.vo import build_vo


@pytest.fixture()
def vo():
    return build_vo(n_sites=3, seed=171, monitors=False)


def test_site_info_published_and_queryable(vo):
    for site in vo.site_names:
        publish_site_info(vo, site)
    hits = vo.run_process(vo.network.call(
        "agrid01", "agrid02", "mds-index", "query",
        payload="//GridSite[@name='agrid02']",
    ))
    assert len(hits) == 1
    assert hits[0]["attrib"]["os"] == "Linux"


def test_software_publish_and_query(vo):
    publish_software(vo, "agrid02", "java", "1.4",
                     "/home/glare/java/bin/java", "/home/glare/java")
    found = vo.run_process(query_software(vo, "agrid01", "agrid02", "java",
                                          target_site="agrid02"))
    assert found == [{"site": "agrid02", "name": "java", "version": "1.4"}]
    path = vo.run_process(query_software_path(vo, "agrid01", "agrid02",
                                              "java", "agrid02"))
    assert path == "/home/glare/java/bin/java"


def test_missing_software_returns_empty(vo):
    found = vo.run_process(query_software(vo, "agrid01", "agrid02", "fortran"))
    assert found == []
    path = vo.run_process(query_software_path(vo, "agrid01", "agrid02",
                                              "fortran", "agrid02"))
    assert path == ""


def test_name_location_coupling_is_per_site(vo):
    """The paper's §2 critique: MDS entries bind names to one site."""
    publish_software(vo, "agrid01", "ant", "1.6", "/a/bin/ant")
    publish_software(vo, "agrid02", "ant", "1.5", "/other/ant")
    only_site1 = vo.run_process(query_software(
        vo, "agrid00", "agrid01", "ant", target_site="agrid01"))
    assert len(only_site1) == 1
    # querying site2's index never sees site1's entry: no federation
    from_site2 = vo.run_process(query_software(
        vo, "agrid00", "agrid02", "ant", target_site="agrid01"))
    assert from_site2 == []
