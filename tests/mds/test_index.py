"""Unit tests for the WS-MDS index baseline."""

import pytest

from repro.mds import IndexService
from repro.net import Network, Topology
from repro.simkernel import Simulator
from repro.wsrf.xmldoc import Element


def type_doc(name):
    doc = Element("ActivityType", attrib={"name": name, "kind": "concrete"})
    doc.make_child("Domain", text="imaging")
    doc.make_child("Function", text="render")
    return doc


def make_world(n_sites=3, **index_kwargs):
    sim = Simulator(seed=11)
    names = [f"s{i}" for i in range(n_sites)]
    topo = Topology.full_mesh(names, latency=0.003, bandwidth=1e7)
    net = Network(sim, topo)
    for n in names:
        net.add_node(n, cores=2)
    index = IndexService(net, "s0", **index_kwargs)
    return sim, net, index


def run(sim, gen):
    proc = sim.process(gen)
    sim.run()
    assert proc.ok, proc.value
    return proc.value


class TestRegistrationAndQuery:
    def test_register_then_query(self):
        sim, net, index = make_world()

        def client():
            for i in range(5):
                yield from net.call(
                    "s1", "s0", "mds-index", "register",
                    payload={"key": f"t{i}", "xml": type_doc(f"type{i}").to_string()},
                )
            hits = yield from net.call(
                "s1", "s0", "mds-index", "query",
                payload="//ActivityType[@name='type3']",
            )
            return hits

        hits = run(sim, client())
        assert len(hits) == 1
        assert hits[0]["attrib"]["name"] == "type3"
        assert index.resource_count == 5

    def test_unregister(self):
        sim, net, index = make_world()

        def client():
            yield from net.call(
                "s1", "s0", "mds-index", "register",
                payload={"key": "k", "xml": type_doc("gone").to_string()},
            )
            out = yield from net.call(
                "s1", "s0", "mds-index", "unregister", payload={"key": "k"}
            )
            return out

        out = run(sim, client())
        assert out["removed"] is True
        assert index.resource_count == 0

    def test_query_cost_grows_with_registry_size(self):
        """The O(n) XPath-scan behaviour behind paper Fig. 11."""
        times = {}
        for n in (10, 120):
            sim, net, index = make_world(per_visit_cost=5e-5)
            for i in range(n):
                index.register_document(
                    _epr(f"t{i}"), type_doc(f"type{i}")
                )

            def client():
                start = sim.now
                yield from net.call(
                    "s1", "s0", "mds-index", "query",
                    payload="//ActivityType[@name='type1']",
                )
                return sim.now - start

            times[n] = run(sim, client())
        assert times[120] > times[10] * 1.5


class TestOverloadCollapse:
    def test_thrash_multiplier_kicks_in(self):
        sim, net, index = make_world(heap_node_budget=100.0)
        for i in range(50):
            index.register_document(_epr(f"t{i}"), type_doc(f"type{i}"))
        index._active_queries = 11
        assert index._pressure_multiplier() > 1.0
        index._active_queries = 0

    def test_no_thrash_under_budget(self):
        sim, net, index = make_world()
        for i in range(10):
            index.register_document(_epr(f"t{i}"), type_doc(f"type{i}"))
        index._active_queries = 2
        assert index._pressure_multiplier() == 1.0
        index._active_queries = 0

    def test_collapse_under_many_clients_and_resources(self):
        """>130 resources and >10 clients: service time explodes."""
        sim, net, index = make_world(n_sites=4, heap_node_budget=4000.0)
        for i in range(150):
            index.register_document(_epr(f"t{i}"), type_doc(f"type{i}"))
        completed = []

        def client(cid):
            while True:
                yield from net.call(
                    f"s{1 + cid % 3}", "s0", "mds-index", "query",
                    payload="//ActivityType[@name='type7']",
                )
                completed.append(sim.now)

        for cid in range(14):
            sim.process(client(cid))
        sim.run(until=60)
        throughput = len(completed) / 60.0
        assert throughput < 2.0  # effectively unresponsive
        assert index.thrashed_queries > 0


class TestHierarchy:
    def test_site_keepalive_and_expiry(self):
        sim, net, _local = make_world(n_sites=3)
        community = IndexService(
            net, "s1", community=True, registration_ttl=50.0, name="community-index"
        )
        leaf = IndexService(
            net, "s2", upstream="s1", keepalive_interval=10.0, name="leaf-index",
            upstream_service="community-index",
        )
        leaf.start()
        sim.run(until=30)
        # the community host itself is always a live member
        assert community.live_sites() == ["s1", "s2"]
        net.set_online("s2", False)
        sim.run(until=200)
        assert community.live_sites() == ["s1"]

    def test_probe_reports_community_status(self):
        sim, net, index = make_world()
        community = IndexService(net, "s1", community=True, name="community")

        def client():
            local = yield from net.call("s2", "s0", "mds-index", "probe")
            root = yield from net.call("s2", "s1", "community", "probe")
            return local, root

        local, root = run(sim, client())
        assert local["community"] is False
        assert root["community"] is True

    def test_register_site_on_default_index_rejected(self):
        sim, net, index = make_world()
        caught = []

        def client():
            try:
                yield from net.call(
                    "s1", "s0", "mds-index", "register_site", payload={"site": "s1"}
                )
            except RuntimeError:
                caught.append(True)

        sim.process(client())
        sim.run()
        assert caught == [True]


def _epr(key):
    from repro.wsrf.resource import EndpointReference

    return EndpointReference(address="s0/mds-index", service="mds-index", key=key)


class TestIncrementalNodeCount:
    """_total_nodes is maintained incrementally; must track a full recount."""

    def _epr(self, index, key):
        from repro.wsrf.resource import EndpointReference

        return EndpointReference(address=f"s{key}/{index.name}",
                                 service=index.name, key=f"k{key}")

    def test_register_unregister_replace_keep_count_exact(self):
        sim, net, index = make_world()
        docs = [type_doc(f"T{i}") for i in range(5)]
        for i, doc in enumerate(docs):
            index.register_document(self._epr(index, i), doc)
        assert index._total_nodes == sum(d.count_nodes() for d in docs)

        # replace an entry with a bigger document: no double counting
        big = type_doc("T0")
        for j in range(7):
            big.make_child("Extra", text=str(j))
        index.register_document(self._epr(index, 0), big)
        index._recount()
        recounted = index._total_nodes
        index.register_document(self._epr(index, 0), big)  # idempotent
        assert index._total_nodes == recounted

        assert index.unregister_document(self._epr(index, 3))
        assert not index.unregister_document(self._epr(index, 3))
        incremental = index._total_nodes
        index._recount()
        assert index._total_nodes == incremental

    def test_incremental_total_matches_recount_after_churn(self):
        sim, net, index = make_world()
        for round_no in range(3):
            for i in range(6):
                index.register_document(self._epr(index, i),
                                        type_doc(f"T{round_no}-{i}"))
            for i in range(0, 6, 2):
                index.unregister_document(self._epr(index, i))
        incremental = index._total_nodes
        index._recount()
        assert index._total_nodes == incremental
        assert incremental > 0
