"""Tests for the opt-in link bandwidth-contention model."""

import pytest

from repro.gridftp.service import GridFtpService, UrlCatalog
from repro.net import Network, Topology
from repro.simkernel import Simulator
from repro.site.description import SiteDescription
from repro.site.gridsite import GridSite


def make_world(contention):
    sim = Simulator(seed=61)
    topo = Topology()
    topo.add_link("src", "dst", latency=0.001, bandwidth=1e6)
    topo.add_link("src", "other", latency=0.001, bandwidth=1e6)
    net = Network(sim, topo, contention=contention)
    catalog = UrlCatalog()
    sites = {}
    for name in ("src", "dst", "other"):
        sites[name] = GridSite(net, SiteDescription(name=name))
        GridFtpService(net, name, fs=sites[name].fs, url_catalog=catalog)
    sites["src"].fs.put_file("/data/big", size=2_000_000)
    return sim, net, sites


def run_parallel_fetches(contention, destinations):
    sim, net, sites = make_world(contention)
    finish_times = {}

    def fetch(dst, index):
        service = net.node(dst).services["gridftp"]
        yield from service.fetch("src", "/data/big", f"/tmp/big{index}")
        finish_times[(dst, index)] = sim.now

    for index, dst in enumerate(destinations):
        sim.process(fetch(dst, index))
    sim.run()
    return finish_times


class TestContention:
    def test_shared_link_halves_throughput(self):
        solo = run_parallel_fetches(True, ["dst"])
        pair = run_parallel_fetches(True, ["dst", "dst"])
        solo_time = max(solo.values())
        pair_time = max(pair.values())
        # two 2MB transfers over one 1MB/s link: ~2x the solo duration
        assert pair_time > 1.6 * solo_time

    def test_disjoint_links_unaffected(self):
        pair_disjoint = run_parallel_fetches(True, ["dst", "other"])
        solo = run_parallel_fetches(True, ["dst"])
        # different spokes of the star: no sharing beyond the src node
        # (src-dst and src-other are distinct edges)
        assert max(pair_disjoint.values()) == pytest.approx(
            max(solo.values()), rel=0.2
        )

    def test_disabled_by_default(self):
        sim = Simulator()
        topo = Topology()
        topo.add_link("a", "b", latency=0.001, bandwidth=1e6)
        net = Network(sim, topo)
        assert net.contention is False
        pair = run_parallel_fetches(False, ["dst", "dst"])
        solo = run_parallel_fetches(False, ["dst"])
        # without contention, parallel transfers don't slow each other
        assert max(pair.values()) == pytest.approx(max(solo.values()), rel=0.15)

    def test_link_counters_drain(self):
        sim, net, sites = make_world(True)

        def fetch(index):
            service = net.node("dst").services["gridftp"]
            yield from service.fetch("src", "/data/big", f"/tmp/b{index}")

        for index in range(3):
            sim.process(fetch(index))
        sim.run()
        assert net._link_active == {}
