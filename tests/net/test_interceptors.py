"""Unit tests for the RPC interceptor pipeline, retry engine and
admission control (the unified RPC stack)."""

import pytest

from repro.net import Network, Topology
from repro.net.interceptors import (
    CallContext,
    Interceptor,
    Overloaded,
    RemoteError,
    RetryPolicy,
    RpcTimeout,
    compose,
)
from repro.net.message import Message, Response
from repro.net.service import EchoService, Service
from repro.simkernel import Simulator
from repro.simkernel.errors import OfflineError


def make_net(sites=("A", "B", "C"), seed=1):
    sim = Simulator(seed=seed)
    topo = Topology.full_mesh(sites, latency=0.005, bandwidth=1e7)
    net = Network(sim, topo)
    for s in sites:
        net.add_node(s, cores=2)
    return sim, net


class FlakyService(Service):
    """Fails the first ``failures`` dispatches, then succeeds."""

    SERVICE_NAME = "flaky"

    def __init__(self, network, node_name, failures=2,
                 error=OfflineError, demand=0.001):
        super().__init__(network, node_name)
        self.failures = failures
        self.error = error
        self.demand = demand
        self.attempts_seen = 0

    def op_work(self, message):
        yield from self.compute(self.demand)
        self.attempts_seen += 1
        if self.attempts_seen <= self.failures:
            raise self.error(f"induced failure #{self.attempts_seen}")
        return Response(value=f"ok after {self.attempts_seen}")


class SlowService(Service):
    SERVICE_NAME = "slow"

    def __init__(self, network, node_name, delay=5.0):
        super().__init__(network, node_name)
        self.delay = delay

    def op_work(self, message):
        yield self.sim.timeout(self.delay)
        return Response(value="slow done")


class TestCompose:
    def test_composition_order_is_outermost_first(self):
        trace = []

        class Tag(Interceptor):
            def __init__(self, label):
                self.label = label

            def intercept(self, ctx, call_next):
                trace.append(f"+{self.label}")
                value = yield from call_next(ctx)
                trace.append(f"-{self.label}")
                return value

        def terminal(ctx):
            trace.append("terminal")
            return ctx.payload
            yield  # pragma: no cover - generator marker

        chain = compose([Tag("outer"), Tag("inner")], terminal)
        ctx = CallContext("A", "B", "svc", "m", "value", 0, None)

        def run():
            result = yield from chain(ctx)
            return result

        sim = Simulator(seed=1)
        proc = sim.process(run())
        sim.run()
        assert proc.value == "value"
        assert trace == ["+outer", "+inner", "terminal", "-inner", "-outer"]

    def test_empty_chain_is_the_terminal(self):
        def terminal(ctx):
            return "t"
            yield  # pragma: no cover - generator marker

        assert compose([], terminal) is terminal

    def test_default_pipeline_has_no_layers(self):
        _, net = make_net()
        assert net.interceptors == []


class TestCallContext:
    def test_endpoint_and_defaults(self):
        ctx = CallContext("A", "B", "echo", "echo", None, 0, None)
        assert ctx.endpoint == "echo.echo"
        assert ctx.attempt == 1


class TestRetryPolicy:
    def test_single_reproduces_call_with_timeout(self):
        """call(retry=single(T)) and legacy call_with_timeout agree."""
        results = {}
        for key in ("legacy", "policy"):
            sim, net = make_net()
            SlowService(net, "B", delay=5.0)

            def client(k=key, s=sim, n=net):
                try:
                    if k == "legacy":
                        yield from n.call_with_timeout(
                            "A", "B", "slow", "work", timeout=1.0)
                    else:
                        yield from n.call(
                            "A", "B", "slow", "work",
                            retry=RetryPolicy.single(1.0))
                except RpcTimeout as error:
                    return (s.now, str(error))

            proc = sim.process(client())
            sim.run()
            results[key] = proc.value
        assert results["legacy"] == results["policy"]

    def test_engaged(self):
        assert not RetryPolicy().engaged
        assert RetryPolicy(attempts=2).engaged
        assert RetryPolicy(per_try_timeout=1.0).engaged
        assert RetryPolicy(deadline=5.0).engaged

    def test_retries_transient_error_until_success(self):
        sim, net = make_net()
        svc = FlakyService(net, "B", failures=2)
        policy = RetryPolicy(attempts=4, base_delay=0.5, multiplier=2.0)

        def client():
            value = yield from net.call("A", "B", "flaky", "work", retry=policy)
            return value

        proc = sim.process(client())
        sim.run()
        assert proc.value == "ok after 3"
        assert svc.attempts_seen == 3
        assert net.retries_total == 2
        # backoff delays 0.5 + 1.0 elapsed between the attempts
        assert sim.now > 1.5

    def test_attempts_exhausted_reraises(self):
        sim, net = make_net()
        FlakyService(net, "B", failures=10)
        policy = RetryPolicy(attempts=3, base_delay=0.1)

        def client():
            try:
                yield from net.call("A", "B", "flaky", "work", retry=policy)
            except OfflineError as error:
                return str(error)

        proc = sim.process(client())
        sim.run()
        assert "induced failure #3" in proc.value

    def test_non_transient_error_not_retried(self):
        sim, net = make_net()
        svc = FlakyService(net, "B", failures=10, error=ValueError)
        policy = RetryPolicy(attempts=5, base_delay=0.1)

        def client():
            try:
                yield from net.call("A", "B", "flaky", "work", retry=policy)
            except ValueError:
                return "raised"

        proc = sim.process(client())
        sim.run()
        assert proc.value == "raised"
        assert svc.attempts_seen == 1
        assert net.retries_total == 0

    def test_retry_on_extends_the_transient_set(self):
        sim, net = make_net()
        svc = FlakyService(net, "B", failures=1, error=ValueError)
        policy = RetryPolicy(attempts=3, base_delay=0.1, retry_on=(ValueError,))

        def client():
            value = yield from net.call("A", "B", "flaky", "work", retry=policy)
            return value

        proc = sim.process(client())
        sim.run()
        assert proc.value == "ok after 2"
        assert svc.attempts_seen == 2

    def test_deadline_bounds_total_budget(self):
        sim, net = make_net()
        FlakyService(net, "B", failures=100)
        policy = RetryPolicy(attempts=50, base_delay=2.0, multiplier=1.0,
                             backoff="linear", deadline=5.0)

        def client():
            try:
                yield from net.call("A", "B", "flaky", "work", retry=policy)
            except OfflineError:
                return sim.now

        proc = sim.process(client())
        sim.run()
        assert proc.value <= 5.0 + 1.0  # deadline plus one attempt's latency

    def test_offline_target_retried_after_recovery(self):
        sim, net = make_net()
        EchoService(net, "B")
        net.set_online("B", False)
        policy = RetryPolicy(attempts=5, base_delay=2.0, multiplier=1.0,
                             backoff="linear")

        def recover():
            yield sim.timeout(3.0)
            net.set_online("B", True)

        def client():
            value = yield from net.call(
                "A", "B", "echo", "echo", payload="hi", retry=policy)
            return value

        sim.process(recover())
        proc = sim.process(client())
        sim.run()
        assert proc.value == "hi"
        assert net.retries_total >= 1


class TestRemoteError:
    def test_wraps_cause_and_preserves_type_name(self):
        error = RemoteError(ValueError("boom"))
        assert error.error_type == "ValueError"
        assert not error.transient

    def test_transient_follows_cause(self):
        error = RemoteError(Overloaded("shed"))
        assert error.transient
        assert RetryPolicy(attempts=2).retryable(error)


class TestAdmissionControl:
    def test_overload_sheds_with_counter(self):
        sim, net = make_net()
        svc = SlowService(net, "B", delay=2.0)
        svc.admission_limit = 2
        outcomes = []

        def client(index):
            try:
                yield from net.call("A", "B", "slow", "work")
                outcomes.append("ok")
            except Overloaded:
                outcomes.append("shed")

        for i in range(4):
            sim.process(client(i))
        sim.run()
        assert outcomes.count("ok") == 2
        assert outcomes.count("shed") == 2
        assert svc.requests_shed == 2
        assert svc.requests_handled == 2
        assert svc.inflight == 0

    def test_shed_tally_is_labelled_per_op(self):
        sim, net = make_net()
        svc = SlowService(net, "B", delay=2.0)
        svc.admission_limit = 1

        def client():
            try:
                yield from net.call("A", "B", "slow", "work")
            except Overloaded:
                pass

        for i in range(5):
            sim.process(client())
        sim.run()
        assert svc.requests_shed == 4
        assert svc.shed_by_op == {"work": 4}
        assert sum(svc.shed_by_op.values()) == svc.requests_shed

    def test_shed_request_is_retryable(self):
        assert Overloaded("x").transient
        assert RetryPolicy(attempts=2).retryable(Overloaded("x"))

    def test_no_limit_by_default(self):
        sim, net = make_net()
        svc = SlowService(net, "B", delay=1.0)
        for i in range(6):
            sim.process(self._client(net))
        sim.run()
        assert svc.requests_handled == 6
        assert svc.requests_shed == 0

    @staticmethod
    def _client(net):
        yield from net.call("A", "B", "slow", "work")


class TestSLOInterceptor:
    @staticmethod
    def make_slo_net(enabled=False):
        from repro.obs import Observability
        from repro.obs.slo import SLOSpec

        sim = Simulator(seed=1)
        topo = Topology.full_mesh(("A", "B"), latency=0.005, bandwidth=1e7)
        obs = Observability(enabled=enabled, slos=(
            SLOSpec(name="attempts", endpoint="flaky.*", target=0.9,
                    level="attempt", alerts=()),
            SLOSpec(name="calls", endpoint="flaky.*", target=0.9,
                    level="call", alerts=()),
        ))
        net = Network(sim, topo, obs=obs)
        for s in ("A", "B"):
            net.add_node(s, cores=2)
        return sim, net

    def test_layer_installed_only_when_slos_configured(self):
        _, plain = make_net()
        assert [i.name for i in plain.interceptors] == []
        _, net = self.make_slo_net()
        assert [i.name for i in net.interceptors] == ["slo"]
        _, full = self.make_slo_net(enabled=True)
        # inside trace/metrics so every SLI sees the full pipeline pass
        assert [i.name for i in full.interceptors] == [
            "trace", "metrics", "slo"]

    def test_every_retry_attempt_is_one_sli_event(self):
        sim, net = self.make_slo_net()
        FlakyService(net, "B", failures=2)
        policy = RetryPolicy(attempts=4, base_delay=0.5)

        def client():
            value = yield from net.call("A", "B", "flaky", "work",
                                        retry=policy)
            return value

        proc = sim.process(client())
        sim.run()
        assert proc.value == "ok after 3"
        engine = net.obs.slo
        # server view: three pipeline passes, two of them bad
        attempts = engine.status("attempts")
        assert (attempts.total, attempts.bad) == (3, 2)
        # client view: the one call succeeded after retries
        calls = engine.status("calls")
        assert (calls.total, calls.bad) == (1, 0)

    def test_failed_call_records_bad_at_both_levels(self):
        sim, net = self.make_slo_net()
        FlakyService(net, "B", failures=10, error=ValueError)

        def client():
            try:
                yield from net.call("A", "B", "flaky", "work")
            except ValueError:
                return "raised"

        proc = sim.process(client())
        sim.run()
        assert proc.value == "raised"
        engine = net.obs.slo
        assert (engine.status("attempts").total,
                engine.status("attempts").bad) == (1, 1)
        assert (engine.status("calls").total,
                engine.status("calls").bad) == (1, 1)

    def test_unmatched_endpoint_records_nothing(self):
        sim, net = self.make_slo_net()
        EchoService(net, "B")

        def client():
            yield from net.call("A", "B", "echo", "echo", payload="x")

        sim.process(client())
        sim.run()
        engine = net.obs.slo
        assert engine.status("attempts").total == 0
        assert engine.status("calls").total == 0


class TestDispatchCounters:
    def test_success_and_failure_counted_separately(self):
        sim, net = make_net()
        svc = EchoService(net, "B")

        def client():
            yield from net.call("A", "B", "echo", "echo", payload="x")
            try:
                yield from net.call("A", "B", "echo", "fail")
            except RuntimeError:
                pass

        sim.process(client())
        sim.run()
        assert svc.requests_handled == 1
        assert svc.requests_failed == 1

    def test_inflight_gauge_tracked_without_observability(self):
        sim, net = make_net()
        SlowService(net, "B", delay=2.0)
        seen = []

        def watcher():
            yield sim.timeout(1.0)
            seen.append(net.node("B").inflight_rpcs)

        def client():
            yield from net.call("A", "B", "slow", "work")

        sim.process(client())
        sim.process(watcher())
        sim.run()
        assert seen == [1]
        assert net.node("B").inflight_rpcs == 0
