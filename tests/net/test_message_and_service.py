"""Tests for message envelopes, size estimation, and service helpers."""

import pytest

from repro.net.message import Message, Response, estimate_size
from repro.net.service import EchoService, Service
from repro.net import Network, Topology
from repro.simkernel import CPU, Simulator


class TestSizeEstimation:
    def test_floor_applies(self):
        assert estimate_size(None) == 256
        assert estimate_size("x") == 256

    def test_grows_with_payload(self):
        small = estimate_size("a" * 100)
        large = estimate_size("a" * 10_000)
        assert large > small
        assert large >= 10_000

    def test_message_autosizes(self):
        message = Message(src="a", dst="b", service="s", method="m",
                          payload="p" * 5000)
        assert message.size >= 5000
        explicit = Message(src="a", dst="b", service="s", method="m",
                           payload="p", size=12345)
        assert explicit.size == 12345

    def test_response_autosizes(self):
        assert Response(value=None).size == 256
        assert Response(value="v" * 4000).size >= 4000
        assert Response(value="v", size=9).size == 9

    def test_message_ids_unique(self):
        a = Message(src="a", dst="b", service="s", method="m")
        b = Message(src="a", dst="b", service="s", method="m")
        assert a.msg_id != b.msg_id


class TestServiceHelpers:
    def make_net(self):
        sim = Simulator(seed=3)
        topo = Topology.full_mesh(["x", "y"], latency=0.002, bandwidth=1e7)
        net = Network(sim, topo)
        net.add_node("x")
        net.add_node("y")
        return sim, net

    def test_duplicate_service_name_rejected(self):
        sim, net = self.make_net()
        EchoService(net, "x")
        with pytest.raises(ValueError, match="already deployed"):
            EchoService(net, "x")

    def test_distinct_names_coexist(self):
        sim, net = self.make_net()
        EchoService(net, "x", name="echo-1")
        EchoService(net, "x", name="echo-2")
        assert set(net.node("x").services) == {"echo-1", "echo-2"}

    def test_service_to_service_call(self):
        sim, net = self.make_net()

        class Relay(Service):
            SERVICE_NAME = "relay"

            def op_forward(self, message):
                value = yield from self.call("y", "echo", "echo",
                                             payload=message.payload)
                return f"relayed:{value}"

        Relay(net, "x")
        EchoService(net, "y")

        def client():
            value = yield from net.call("y", "x", "relay", "forward",
                                        payload="ping")
            return value

        proc = sim.process(client())
        sim.run()
        assert proc.value == "relayed:ping"

    def test_requests_handled_counter(self):
        sim, net = self.make_net()
        echo = EchoService(net, "y")

        def client():
            for _ in range(3):
                yield from net.call("x", "y", "echo", "echo", payload=1)

        sim.process(client())
        sim.run()
        assert echo.requests_handled == 3


class TestCpuAccounting:
    def test_utilization_fraction(self):
        sim = Simulator()
        cpu = CPU(sim, cores=2)

        def burn():
            yield from cpu.execute(10.0)

        sim.process(burn())
        sim.process(burn())
        sim.run(until=20.0)
        # 20 core-seconds of work over 20s on 2 cores = 50%
        assert cpu.utilization() == pytest.approx(0.5, abs=0.01)

    def test_speed_scales_duration(self):
        sim = Simulator()
        fast = CPU(sim, cores=1, speed=2.0)
        done = []

        def burn():
            yield from fast.execute(10.0)
            done.append(sim.now)

        sim.process(burn())
        sim.run()
        assert done == [5.0]

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CPU(sim, cores=0)
        with pytest.raises(ValueError):
            CPU(sim, cores=1, speed=0)
        cpu = CPU(sim, cores=1)
        with pytest.raises(ValueError):
            list(cpu.execute(-1))


class TestSizeEstimationExactness:
    """The compositional fast path must equal ``max(floor, len(repr(p)))``.

    :func:`repro.net.message.estimate_size` documents this identity;
    the memoized/compositional computation is purely a speedup.
    """

    def test_scalars(self):
        for payload in ("", "hello", "x" * 5000, 0, -17, 3.14159, True, False):
            assert estimate_size(payload) == max(256, len(repr(payload)))

    def test_nested_containers(self):
        payloads = [
            {},
            [],
            {"key": "value", "n": 42},
            ["a", "b", {"c": [1, 2, 3]}],
            {"xml": "<Entry name='x'/>" * 100, "meta": {"depth": [None, True]}},
            {"quotes": 'she said "hi"', "apos": "it's"},
        ]
        for payload in payloads:
            assert estimate_size(payload) == max(256, len(repr(payload)))

    def test_memoized_strings_stay_exact(self):
        # repeated calls hit the repr-length memo; values must not drift
        payload = {"path": "/opt/app/bin/app", "site": "s0"}
        first = estimate_size(payload)
        for _ in range(5):
            assert estimate_size(payload) == first == max(256, len(repr(payload)))


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis always in CI
    pass
else:
    _scalars = st.one_of(
        st.none(), st.booleans(), st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=40),
    )
    _payloads = st.recursive(
        _scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=10), children, max_size=5),
        ),
        max_leaves=25,
    )

    @given(_payloads)
    @settings(max_examples=300)
    def test_estimate_size_equals_repr_length(payload):
        expected = 256 if payload is None else max(256, len(repr(payload)))
        assert estimate_size(payload) == expected
