"""Unit tests for topology, RPC transport, and the security model."""

import pytest

from repro.net import Network, SecurityPolicy, Topology
from repro.net.network import RpcTimeout, ServiceNotFound
from repro.net.service import EchoService, UnknownOperation
from repro.simkernel import Simulator
from repro.simkernel.errors import OfflineError


def make_net(security=None, sites=("A", "B", "C")):
    sim = Simulator(seed=1)
    topo = Topology.full_mesh(sites, latency=0.005, bandwidth=1e7)
    net = Network(sim, topo, security=security)
    for s in sites:
        net.add_node(s, cores=2)
    return sim, net


class TestTopology:
    def test_path_metrics_direct(self):
        topo = Topology()
        topo.add_link("A", "B", latency=0.01, bandwidth=1e6)
        lat, bw = topo.path_metrics("A", "B")
        assert lat == pytest.approx(0.01)
        assert bw == pytest.approx(1e6)

    def test_path_metrics_multihop_bottleneck(self):
        topo = Topology()
        topo.add_link("A", "B", latency=0.01, bandwidth=1e6)
        topo.add_link("B", "C", latency=0.02, bandwidth=5e5)
        lat, bw = topo.path_metrics("A", "C")
        assert lat == pytest.approx(0.03)
        assert bw == pytest.approx(5e5)

    def test_loopback(self):
        topo = Topology()
        topo.add_site("A")
        lat, bw = topo.path_metrics("A", "A")
        assert lat < 1e-3
        assert bw > 1e8

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_site("A")
        topo.add_site("B")
        with pytest.raises(ValueError):
            topo.path_metrics("A", "B")

    def test_star_builder(self):
        topo = Topology.star("hub", ["a", "b", "c"])
        assert topo.has_path("a", "c")
        lat_direct, _ = topo.path_metrics("a", "hub")
        lat_via, _ = topo.path_metrics("a", "b")
        assert lat_via == pytest.approx(2 * lat_direct)

    def test_invalid_link_params(self):
        with pytest.raises(ValueError):
            Topology().add_link("A", "B", latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            Topology().add_link("A", "B", latency=0, bandwidth=0)


class TestRpc:
    def test_echo_roundtrip(self):
        sim, net = make_net()
        EchoService(net, "B")
        out = {}

        def client():
            out["v"] = yield from net.call("A", "B", "echo", "echo", payload="hi")

        sim.process(client())
        sim.run()
        assert out["v"] == "hi"
        assert sim.now > 0.01  # at least one RTT
        assert net.total_messages == 2

    def test_local_call_is_fast(self):
        sim, net = make_net()
        EchoService(net, "A", demand=0.0)

        def client():
            yield from net.call("A", "A", "echo", "echo", payload="x")

        sim.process(client())
        sim.run()
        assert sim.now < 0.005

    def test_remote_exception_propagates(self):
        sim, net = make_net()
        EchoService(net, "B")
        caught = []

        def client():
            try:
                yield from net.call("A", "B", "echo", "fail")
            except RuntimeError as e:
                caught.append(str(e))

        sim.process(client())
        sim.run()
        assert caught and "failure" in caught[0]

    def test_unknown_service_and_method(self):
        sim, net = make_net()
        EchoService(net, "B")
        errors = []

        def client():
            try:
                yield from net.call("A", "B", "nope", "echo")
            except ServiceNotFound:
                errors.append("svc")
            try:
                yield from net.call("A", "B", "echo", "nope")
            except UnknownOperation:
                errors.append("op")

        sim.process(client())
        sim.run()
        assert errors == ["svc", "op"]

    def test_offline_target_raises(self):
        sim, net = make_net()
        EchoService(net, "B")
        net.set_online("B", False)
        errors = []

        def client():
            try:
                yield from net.call("A", "B", "echo", "echo")
            except OfflineError:
                errors.append(sim.now)

        sim.process(client())
        sim.run()
        assert errors and errors[0] >= net.connect_fail_delay

    def test_call_with_timeout_fires(self):
        sim, net = make_net()
        EchoService(net, "B", demand=50.0)  # extremely slow handler
        errors = []

        def client():
            try:
                yield from net.call_with_timeout(
                    "A", "B", "echo", "echo", timeout=0.5
                )
            except RpcTimeout:
                errors.append(sim.now)

        sim.process(client())
        sim.run()
        assert errors and errors[0] == pytest.approx(0.5, abs=0.01)

    def test_call_with_timeout_success(self):
        sim, net = make_net()
        EchoService(net, "B")
        out = {}

        def client():
            out["v"] = yield from net.call_with_timeout(
                "A", "B", "echo", "echo", payload=123, timeout=5.0
            )

        sim.process(client())
        sim.run()
        assert out["v"] == 123


class TestSecurity:
    def test_https_slower_than_http(self):
        durations = {}
        for label, policy in [("http", SecurityPolicy.http()), ("https", SecurityPolicy.https())]:
            sim, net = make_net(security=policy)
            EchoService(net, "B")

            def client():
                yield from net.call("A", "B", "echo", "echo", payload="x" * 500)

            sim.process(client())
            sim.run()
            durations[label] = sim.now
        assert durations["https"] > durations["http"]

    def test_https_halves_saturation_throughput(self):
        """Closed-loop saturation throughput should drop ~2x with TLS."""
        results = {}
        for label, policy in [("http", SecurityPolicy.http()), ("https", SecurityPolicy.https())]:
            sim, net = make_net(security=policy)
            svc = EchoService(net, "B", demand=0.004)
            horizon = 30.0

            def client():
                while True:
                    yield from net.call("A", "B", "echo", "echo", payload="y" * 400)

            for _ in range(8):
                sim.process(client())
            sim.run(until=horizon)
            results[label] = svc.requests_handled / horizon
        ratio = results["http"] / results["https"]
        assert 1.5 < ratio < 3.0

    def test_policy_disabled_costs_zero(self):
        p = SecurityPolicy.http()
        assert p.server_cpu_demand(10_000) == 0.0
        assert p.client_cpu_demand(10_000) == 0.0
        assert p.handshake_latency(0.01) == 0.0
