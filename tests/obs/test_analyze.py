"""Unit tests for critical paths, self-time breakdowns and waterfalls."""

import pytest

from repro.obs.analyze import (
    critical_path,
    format_critical_path,
    format_self_times,
    format_trace_analytics,
    format_waterfall,
    self_time_breakdown,
    slowest_traces,
    trace_root,
)
from repro.obs.trace import Span


def make_span(name, span_id, start, end, parent_id=None, trace_id=1):
    span = Span(tracer=None, name=name, trace_id=trace_id, span_id=span_id,
                parent_id=parent_id, start=start, attrs={})
    span.end = end
    return span


@pytest.fixture()
def fanout_trace():
    """root(0..10) -> fast(1..3) + slow(2..9) -> leaf(4..8)."""
    return [
        make_span("root", 1, 0.0, 10.0),
        make_span("fast", 2, 1.0, 3.0, parent_id=1),
        make_span("slow", 3, 2.0, 9.0, parent_id=1),
        make_span("leaf", 4, 4.0, 8.0, parent_id=3),
    ]


class TestCriticalPath:
    def test_root_selection_prefers_longest(self):
        spans = [make_span("short", 1, 0.0, 1.0),
                 make_span("long", 2, 0.0, 5.0)]
        assert trace_root(spans).name == "long"

    def test_orphan_parent_counts_as_root(self):
        spans = [make_span("orphan", 7, 0.0, 2.0, parent_id=99)]
        assert trace_root(spans).name == "orphan"

    def test_empty_trace(self):
        assert trace_root([]) is None
        assert critical_path([]) == []

    def test_path_descends_into_last_ending_child(self, fanout_trace):
        names = [s.name for s in critical_path(fanout_trace)]
        # the fast sibling never gates end-to-end latency
        assert names == ["root", "slow", "leaf"]


class TestSelfTime:
    def test_child_time_is_excluded(self, fanout_trace):
        stats = {s.name: s for s in self_time_breakdown(fanout_trace)}
        # root: 10 total minus children union [1,3] U [2,9] = [1,9] -> 2
        assert stats["root"].self_s == pytest.approx(2.0)
        # slow: 7 total minus leaf [4,8] -> 3
        assert stats["slow"].self_s == pytest.approx(3.0)
        # leaves keep everything
        assert stats["leaf"].self_s == pytest.approx(4.0)
        assert stats["fast"].self_s == pytest.approx(2.0)

    def test_overlapping_children_subtract_once(self):
        spans = [
            make_span("parent", 1, 0.0, 10.0),
            make_span("a", 2, 1.0, 6.0, parent_id=1),
            make_span("b", 3, 4.0, 8.0, parent_id=1),  # overlaps a on [4,6]
        ]
        stats = {s.name: s for s in self_time_breakdown(spans)}
        # union of children is [1,8] -> self = 3, not 10 - 5 - 4 = 1
        assert stats["parent"].self_s == pytest.approx(3.0)

    def test_child_outlasting_parent_never_goes_negative(self):
        spans = [
            make_span("parent", 1, 0.0, 2.0),
            make_span("runaway", 2, 0.0, 5.0, parent_id=1),
        ]
        stats = {s.name: s for s in self_time_breakdown(spans)}
        assert stats["parent"].self_s == 0.0

    def test_aggregates_by_name(self):
        spans = [make_span("op", i, 0.0, 1.0, trace_id=i) for i in (1, 2, 3)]
        stats = self_time_breakdown(spans)
        assert len(stats) == 1
        assert stats[0].count == 3
        assert stats[0].total_s == pytest.approx(3.0)


class TestSlowestTraces:
    def test_ranked_by_root_duration(self, fanout_trace):
        traces = {
            1: fanout_trace,
            2: [make_span("quick", 9, 0.0, 1.0, trace_id=2)],
        }
        ranked = slowest_traces(traces, k=2)
        assert [trace_id for trace_id, _, _ in ranked] == [1, 2]
        assert ranked[0][2] == pytest.approx(10.0)
        assert len(slowest_traces(traces, k=1)) == 1


class TestRenderers:
    def test_format_critical_path(self, fanout_trace):
        text = format_critical_path(fanout_trace, title="demo")
        assert text.startswith("demo")
        assert "critical path: 3 hops over 10000.00 ms" in text
        assert "slow" in text and "fast" not in text

    def test_format_self_times_percentages(self, fanout_trace):
        text = format_self_times(self_time_breakdown(fanout_trace))
        assert "operation" in text and "self %" in text
        assert "leaf" in text

    def test_format_waterfall_bars(self, fanout_trace):
        text = format_waterfall(fanout_trace, width=20)
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("#" in line for line in lines)
        # the root bar spans the full width
        assert lines[0].count("#") == 20

    def test_empty_inputs(self):
        assert format_critical_path([]) == "(empty trace)"
        assert format_waterfall([]) == "(empty trace)"
        assert format_self_times([]) == "(no spans captured)"
        assert format_trace_analytics({}) == "(no spans captured)"

    def test_combined_analytics(self, fanout_trace):
        text = format_trace_analytics({1: fanout_trace}, top=1)
        assert "Self-time by operation" in text
        assert "trace 1" in text
