"""CLI smoke tests for the trace/metrics subcommands."""

import json

import pytest

from repro.cli import main


@pytest.mark.slow
def test_trace_command_prints_trees_and_exports(tmp_path, capsys):
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    assert main(["trace", "deploy",
                 "--chrome-out", str(chrome),
                 "--jsonl-out", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "rpc:glare-rdm.get_deployments" in out
    assert "tier:on-demand" in out
    assert "install:handler" in out

    document = json.loads(chrome.read_text())
    assert document["traceEvents"]
    lines = jsonl.read_text().splitlines()
    assert lines and all(json.loads(line)["name"] for line in lines)


@pytest.mark.slow
def test_metrics_command_prints_all_planes(capsys):
    assert main(["metrics", "deploy"]) == 0
    out = capsys.readouterr().out
    assert "rpc.calls" in out          # counters
    assert "rpc.latency" in out        # histograms
    assert "site.load" in out          # gauge series
    assert "VO metrics" in out         # stats snapshot table


def test_trace_rejects_unknown_scenario(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "nonsense"])
