"""CLI smoke tests for the trace/metrics subcommands."""

import json

import pytest

from repro.cli import main


@pytest.mark.slow
def test_trace_command_prints_trees_and_exports(tmp_path, capsys):
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    assert main(["trace", "deploy",
                 "--chrome-out", str(chrome),
                 "--jsonl-out", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "rpc:glare-rdm.get_deployments" in out
    assert "tier:on-demand" in out
    assert "install:handler" in out

    document = json.loads(chrome.read_text())
    assert document["traceEvents"]
    lines = jsonl.read_text().splitlines()
    assert lines and all(json.loads(line)["name"] for line in lines)


@pytest.mark.slow
def test_metrics_command_prints_all_planes(capsys):
    assert main(["metrics", "deploy"]) == 0
    out = capsys.readouterr().out
    assert "rpc.calls" in out          # counters
    assert "rpc.latency" in out        # histograms
    assert "site.load" in out          # gauge series
    assert "VO metrics" in out         # stats snapshot table


def test_trace_rejects_unknown_scenario(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "nonsense"])


@pytest.mark.slow
def test_metrics_format_json_is_parseable(capsys):
    assert main(["metrics", "deploy", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert set(data) == {"counters", "histograms", "series"}
    assert any(c["name"] == "rpc.calls" for c in data["counters"])


@pytest.mark.slow
def test_metrics_format_csv_has_flat_rows(capsys):
    assert main(["metrics", "deploy", "--format", "csv"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0].startswith("kind,name,labels,count,value")
    kinds = {line.split(",", 1)[0] for line in lines[1:]}
    assert {"counter", "histogram", "series"} <= kinds


@pytest.mark.slow
def test_health_defaults_to_the_churn_scenario(capsys):
    assert main(["health"]) == 0
    out = capsys.readouterr().out
    assert "VO health" in out
    # the churn scenario crashes agrid01, so the transition log must
    # show the fault plane driving the registry
    assert "fault-plane crash" in out
    assert "fault-plane restart" in out


@pytest.mark.slow
def test_health_format_json(capsys):
    assert main(["health", "churn", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert set(data) == {"nodes", "summary", "transitions"}
    states = {n["node"]: n["state"] for n in data["nodes"]}
    assert "agrid01" in states


@pytest.mark.slow
def test_health_format_csv(capsys):
    assert main(["health", "churn", "--format", "csv"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0] == "node,service,state,since"
    assert len(lines) > 1


@pytest.mark.slow
def test_slo_command_prints_budgets_and_detection(capsys):
    assert main(["slo"]) == 0
    out = capsys.readouterr().out
    assert "Service-level objectives" in out
    assert "rdm-attempts" in out and "rdm-calls" in out
    assert "Burn-rate alerts" in out
    assert "Crash detection" in out
    assert "agrid01 crashed" in out and "detected in" in out


@pytest.mark.slow
def test_analyze_command_prints_trace_analytics(capsys):
    assert main(["analyze", "deploy", "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "Self-time by operation" in out
    assert "critical path:" in out


@pytest.mark.slow
def test_report_command_prints_every_plane(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    # health, SLO, metrics and analytics sections in one report
    assert "VO health" in out
    assert "Service-level objectives" in out
    assert "Counters" in out
    assert "Self-time by operation" in out
