"""Tests for the JSONL/Chrome exporters and text renderers."""

import csv
import io
import json

import pytest

from repro.obs.export import (
    chrome_counter_events,
    chrome_trace_events,
    export_chrome,
    export_jsonl,
    format_trace_tree,
    health_to_csv,
    health_to_dict,
    metrics_to_csv,
    metrics_to_dict,
    render_alerts,
    render_health,
    render_metrics,
    render_slo,
    span_to_dict,
)
from repro.obs.health import HealthRegistry
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import BurnRateRule, SLOEngine, SLOSpec
from repro.obs.trace import Tracer
from repro.simkernel import Simulator


@pytest.fixture()
def sample_spans():
    sim = Simulator()
    tracer = Tracer()
    tracer.bind(sim)

    def work():
        with tracer.span("rpc:svc.op", src="agrid01", dst="agrid02"):
            yield sim.timeout(1)
            with tracer.span("serve:svc.op", site="agrid02"):
                yield sim.timeout(2)

    sim.process(work())
    sim.run()
    return tracer.spans


def test_span_to_dict_round_trips(sample_spans):
    data = span_to_dict(sample_spans[0])
    assert data["name"] == "serve:svc.op"
    assert data["duration"] == pytest.approx(2.0)
    json.dumps(data)  # must be JSON-serialisable


def test_export_jsonl(sample_spans):
    stream = io.StringIO()
    assert export_jsonl(sample_spans, stream) == 2
    lines = stream.getvalue().splitlines()
    parsed = [json.loads(line) for line in lines]
    assert {p["name"] for p in parsed} == {"rpc:svc.op", "serve:svc.op"}
    assert all(p["trace"] == parsed[0]["trace"] for p in parsed)


def test_chrome_events_structure(sample_spans):
    events = chrome_trace_events(sample_spans)
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    # one process per site (serve span has site=agrid02, rpc falls back
    # to src=agrid01), plus one complete event per span
    assert {m["args"]["name"] for m in meta} == {"agrid01", "agrid02"}
    assert len(complete) == 2
    serve = next(e for e in complete if e["name"] == "serve:svc.op")
    assert serve["ts"] == pytest.approx(1e6)  # started at t=1s, in us
    assert serve["dur"] == pytest.approx(2e6)


def test_export_chrome_writes_valid_json(sample_spans):
    stream = io.StringIO()
    count = export_chrome(sample_spans, stream)
    document = json.loads(stream.getvalue())
    assert len(document["traceEvents"]) == count
    assert document["displayTimeUnit"] == "ms"


def test_format_trace_tree_indents_children(sample_spans):
    text = format_trace_tree(sample_spans, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    rpc_line = next(l for l in lines if "rpc:svc.op" in l)
    serve_line = next(l for l in lines if "serve:svc.op" in l)
    assert rpc_line.index("rpc:") < serve_line.index("serve:")
    assert "[dst=agrid02 src=agrid01]" in rpc_line


def test_format_trace_tree_empty():
    assert format_trace_tree([]) == "(no spans)"


def test_render_metrics_empty_registry():
    text = render_metrics(MetricsRegistry())
    assert "(no counters recorded)" in text
    assert "(no histograms recorded)" in text
    assert "(no time series recorded)" in text


def test_render_metrics_populated():
    registry = MetricsRegistry()
    registry.counter("rpc.calls", endpoint="a.b").inc(3)
    registry.histogram("rpc.latency", endpoint="a.b").observe(0.25)
    registry.sample("site.load", 1.5, site="agrid00")
    text = render_metrics(registry)
    assert "rpc.calls" in text and "endpoint=a.b" in text
    assert "250.00" in text  # 0.25 s in ms
    assert "site.load" in text


@pytest.fixture()
def populated_registry():
    registry = MetricsRegistry()
    registry.counter("rpc.calls", endpoint="a.b").inc(3)
    registry.histogram("rpc.latency", endpoint="a.b").observe(0.25)
    registry.sample("site.load", 1.5, site="agrid00")
    registry.sample("site.load", 2.5, site="agrid00")
    return registry


def test_chrome_counter_events(populated_registry):
    events = chrome_counter_events(populated_registry)
    counters = [e for e in events if e["ph"] == "C"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(counters) == 2  # one per sample
    assert {m["args"]["name"] for m in meta} == {"agrid00"}
    first = counters[0]
    assert first["name"] == "site.load"
    assert first["args"] == {"site.load": 1.5}
    assert first["ts"] == 0.0


def test_export_chrome_shares_pids_with_counters(sample_spans,
                                                 populated_registry):
    populated_registry.sample("site.load", 9.0, site="agrid01")
    stream = io.StringIO()
    count = export_chrome(sample_spans, stream, registry=populated_registry)
    document = json.loads(stream.getvalue())
    events = document["traceEvents"]
    assert len(events) == count
    # agrid01 hosts both a span and a counter series: one shared pid
    meta = {e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"}
    span_pids = {e["pid"] for e in events if e["ph"] == "X"}
    counter_pids = {e["pid"] for e in events if e["ph"] == "C"}
    assert meta["agrid01"] in span_pids
    assert meta["agrid01"] in counter_pids


def test_metrics_to_dict(populated_registry):
    data = metrics_to_dict(populated_registry)
    json.dumps(data)  # must be JSON-serialisable
    assert data["counters"] == [
        {"name": "rpc.calls", "labels": {"endpoint": "a.b"}, "value": 3}
    ]
    assert data["histograms"][0]["count"] == 1
    series, = data["series"]
    assert series["samples"] == [[0.0, 1.5], [0.0, 2.5]]


def test_metrics_to_csv(populated_registry):
    rows = list(csv.DictReader(io.StringIO(
        metrics_to_csv(populated_registry))))
    kinds = [row["kind"] for row in rows]
    assert kinds == ["counter", "histogram", "series"]
    assert rows[0]["value"] == "3"
    assert rows[2]["last"] == "2.5"


# -- SLO / health renderers --------------------------------------------------


@pytest.fixture()
def burning_engine():
    sim = Simulator(seed=1)
    engine = SLOEngine((
        SLOSpec(name="avail", endpoint="svc.*", target=0.9,
                alerts=(BurnRateRule("fast", 10.0, 1.0),)),
    ))
    engine.bind(sim)
    for ok in (True, False, False):
        engine.record("svc.op", sim.now, sim.now, ok=ok)
    engine.evaluate()
    return engine


def test_render_slo_table(burning_engine):
    text = render_slo(burning_engine)
    assert "avail" in text and "svc.*" in text
    assert "exhausted" in text
    assert "6.67x" in text  # (2/3) / 0.1 budget


def test_render_alerts_log(burning_engine):
    text = render_alerts(burning_engine)
    assert "fired" in text and "avail/fast" in text
    assert "active now: avail/fast" in text


def test_render_alerts_empty():
    sim = Simulator()
    engine = SLOEngine((SLOSpec(name="s", endpoint="*"),))
    engine.bind(sim)
    assert render_alerts(engine) == "(no burn-rate alerts fired)"


@pytest.fixture()
def populated_health():
    sim = Simulator(seed=1)
    health = HealthRegistry()
    health.bind(sim)
    health.record_dispatch("agrid00", "glare-rdm", ok=True)
    health.on_fault_event({"kind": "crash", "site": "agrid01", "at": 0.0})
    return health


def test_health_to_dict(populated_health):
    data = health_to_dict(populated_health)
    json.dumps(data)
    nodes = {n["node"]: n for n in data["nodes"]}
    assert nodes["agrid01"]["state"] == "down"
    assert nodes["agrid00"]["services"] == {"glare-rdm": "healthy"}
    assert data["summary"]["down"] == 1
    assert data["transitions"][0]["state"] == "down"


def test_health_to_csv(populated_health):
    rows = list(csv.reader(io.StringIO(health_to_csv(populated_health))))
    assert rows[0] == ["node", "service", "state", "since"]
    assert ["agrid00", "glare-rdm", "healthy", ""] in rows
    assert any(r[0] == "agrid01" and r[2] == "down" for r in rows)


def test_render_health(populated_health):
    text = render_health(populated_health)
    assert "VO health" in text
    assert "agrid01" in text and "down" in text
    assert "summary: healthy=1, down=1" in text
    assert "fault-plane crash" in text


def test_render_health_empty():
    health = HealthRegistry()
    assert render_health(health) == "(no health signals recorded)"
