"""Tests for the JSONL/Chrome exporters and text renderers."""

import io
import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    export_chrome,
    export_jsonl,
    format_trace_tree,
    render_metrics,
    span_to_dict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.simkernel import Simulator


@pytest.fixture()
def sample_spans():
    sim = Simulator()
    tracer = Tracer()
    tracer.bind(sim)

    def work():
        with tracer.span("rpc:svc.op", src="agrid01", dst="agrid02"):
            yield sim.timeout(1)
            with tracer.span("serve:svc.op", site="agrid02"):
                yield sim.timeout(2)

    sim.process(work())
    sim.run()
    return tracer.spans


def test_span_to_dict_round_trips(sample_spans):
    data = span_to_dict(sample_spans[0])
    assert data["name"] == "serve:svc.op"
    assert data["duration"] == pytest.approx(2.0)
    json.dumps(data)  # must be JSON-serialisable


def test_export_jsonl(sample_spans):
    stream = io.StringIO()
    assert export_jsonl(sample_spans, stream) == 2
    lines = stream.getvalue().splitlines()
    parsed = [json.loads(line) for line in lines]
    assert {p["name"] for p in parsed} == {"rpc:svc.op", "serve:svc.op"}
    assert all(p["trace"] == parsed[0]["trace"] for p in parsed)


def test_chrome_events_structure(sample_spans):
    events = chrome_trace_events(sample_spans)
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    # one process per site (serve span has site=agrid02, rpc falls back
    # to src=agrid01), plus one complete event per span
    assert {m["args"]["name"] for m in meta} == {"agrid01", "agrid02"}
    assert len(complete) == 2
    serve = next(e for e in complete if e["name"] == "serve:svc.op")
    assert serve["ts"] == pytest.approx(1e6)  # started at t=1s, in us
    assert serve["dur"] == pytest.approx(2e6)


def test_export_chrome_writes_valid_json(sample_spans):
    stream = io.StringIO()
    count = export_chrome(sample_spans, stream)
    document = json.loads(stream.getvalue())
    assert len(document["traceEvents"]) == count
    assert document["displayTimeUnit"] == "ms"


def test_format_trace_tree_indents_children(sample_spans):
    text = format_trace_tree(sample_spans, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    rpc_line = next(l for l in lines if "rpc:svc.op" in l)
    serve_line = next(l for l in lines if "serve:svc.op" in l)
    assert rpc_line.index("rpc:") < serve_line.index("serve:")
    assert "[dst=agrid02 src=agrid01]" in rpc_line


def test_format_trace_tree_empty():
    assert format_trace_tree([]) == "(no spans)"


def test_render_metrics_empty_registry():
    text = render_metrics(MetricsRegistry())
    assert "(no counters recorded)" in text
    assert "(no histograms recorded)" in text
    assert "(no time series recorded)" in text


def test_render_metrics_populated():
    registry = MetricsRegistry()
    registry.counter("rpc.calls", endpoint="a.b").inc(3)
    registry.histogram("rpc.latency", endpoint="a.b").observe(0.25)
    registry.sample("site.load", 1.5, site="agrid00")
    text = render_metrics(registry)
    assert "rpc.calls" in text and "endpoint=a.b" in text
    assert "250.00" in text  # 0.25 s in ms
    assert "site.load" in text
