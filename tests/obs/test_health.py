"""Unit tests for the health registry and the detection timeline."""

import pytest

from repro.obs.health import (
    DEGRADED,
    DOWN,
    HEALTHY,
    RECOVERING,
    HealthRegistry,
    detection_timeline,
)
from repro.simkernel import Simulator


def make_registry(**kwargs):
    sim = Simulator(seed=1)
    registry = HealthRegistry(**kwargs)
    registry.bind(sim)
    return sim, registry


class TestHealthRegistry:
    def test_hold_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthRegistry(degraded_hold=0.0)

    def test_unknown_node_is_healthy(self):
        _, registry = make_registry()
        assert registry.node_state("agrid99") == HEALTHY
        assert registry.node_since("agrid99") == 0.0

    def test_crash_and_restart_walk_the_states(self):
        sim, registry = make_registry()
        sim.run(until=10.0)
        registry.on_fault_event({"kind": "crash", "site": "agrid01", "at": 10.0})
        assert registry.node_state("agrid01") == DOWN
        assert registry.node_since("agrid01") == pytest.approx(10.0)
        sim.run(until=40.0)
        registry.on_fault_event({"kind": "restart", "site": "agrid01", "at": 40.0})
        assert registry.node_state("agrid01") == RECOVERING
        # the first successful dispatch completes recovery
        registry.record_dispatch("agrid01", "glare-rdm", ok=True)
        assert registry.node_state("agrid01") == HEALTHY

    def test_dispatch_failure_degrades_and_hold_heals(self):
        sim, registry = make_registry(degraded_hold=30.0)
        registry.record_dispatch("agrid02", "glare-rdm", ok=False)
        assert registry.node_state("agrid02") == DEGRADED
        assert registry.service_state("agrid02", "glare-rdm") == DEGRADED
        # success inside the hold window does not heal
        sim.run(until=10.0)
        registry.record_dispatch("agrid02", "glare-rdm", ok=True)
        assert registry.node_state("agrid02") == DEGRADED
        # success past the hold heals node and service
        sim.run(until=31.0)
        registry.record_dispatch("agrid02", "glare-rdm", ok=True)
        assert registry.node_state("agrid02") == HEALTHY
        assert registry.service_state("agrid02", "glare-rdm") == HEALTHY

    def test_failure_extends_the_hold(self):
        sim, registry = make_registry(degraded_hold=30.0)
        registry.record_dispatch("agrid02", "glare-rdm", ok=False)
        sim.run(until=20.0)
        registry.record_dispatch("agrid02", "glare-rdm", ok=False)
        # 31 s after the first failure, but inside the second's hold
        sim.run(until=31.0)
        registry.record_dispatch("agrid02", "glare-rdm", ok=True)
        assert registry.service_state("agrid02", "glare-rdm") == DEGRADED

    def test_node_state_dominates_service_state(self):
        _, registry = make_registry()
        registry.record_dispatch("agrid03", "glare-rdm", ok=True)
        registry.on_fault_event({"kind": "crash", "site": "agrid03", "at": 0.0})
        assert registry.service_state("agrid03", "glare-rdm") == DOWN

    def test_down_is_not_masked_by_dispatch_failures(self):
        _, registry = make_registry()
        registry.on_fault_event({"kind": "crash", "site": "agrid04", "at": 0.0})
        registry.record_dispatch("agrid04", "glare-rdm", ok=False)
        assert registry.node_state("agrid04") == DOWN

    def test_summary_and_listings(self):
        _, registry = make_registry()
        registry.record_dispatch("agrid01", "glare-rdm", ok=False)
        registry.on_fault_event({"kind": "crash", "site": "agrid02", "at": 0.0})
        registry.record_dispatch("agrid03", "glare-adm", ok=True)
        assert registry.nodes() == ["agrid01", "agrid02", "agrid03"]
        assert registry.services_of("agrid01") == ["glare-rdm"]
        assert registry.summary() == {
            HEALTHY: 1, DEGRADED: 1, RECOVERING: 0, DOWN: 1,
        }

    def test_transitions_are_logged_in_order(self):
        sim, registry = make_registry()
        registry.on_fault_event({"kind": "crash", "site": "agrid01", "at": 0.0})
        sim.run(until=30.0)
        registry.on_fault_event({"kind": "restart", "site": "agrid01", "at": 30.0})
        registry.record_dispatch("agrid01", "glare-rdm", ok=True)
        states = [(t["state"], t["at"]) for t in registry.transitions
                  if t["service"] is None]
        assert states == [(DOWN, 0.0), (RECOVERING, 30.0), (HEALTHY, 30.0)]


class TestDetectionTimeline:
    def entry(self, kind, at, slo="s", rule="fast"):
        return {"kind": kind, "slo": slo, "rule": rule, "at": at, "burn": 2.0}

    def test_pairs_crashes_with_alerts(self):
        crashes = [{"kind": "crash", "site": "a", "at": 40.0},
                   {"kind": "crash", "site": "b", "at": 110.0}]
        log = [self.entry("fired", 50.0), self.entry("resolved", 90.0),
               self.entry("fired", 115.0), self.entry("resolved", 150.0)]
        records = detection_timeline(crashes, log)
        assert [(r.site, r.mttd, r.mttr) for r in records] == [
            ("a", 10.0, 50.0), ("b", 5.0, 40.0),
        ]
        assert all(r.detected for r in records)

    def test_undetected_crash(self):
        crashes = [{"kind": "crash", "site": "a", "at": 40.0}]
        records = detection_timeline(crashes, [])
        assert records[0].detected_at is None
        assert records[0].mttd is None and records[0].mttr is None
        assert not records[0].detected

    def test_alert_before_crash_is_not_a_detection(self):
        crashes = [{"kind": "crash", "site": "a", "at": 40.0}]
        log = [self.entry("fired", 10.0), self.entry("resolved", 20.0)]
        records = detection_timeline(crashes, log)
        assert not records[0].detected

    def test_recovery_waits_for_all_alerts_to_resolve(self):
        crashes = [{"kind": "crash", "site": "a", "at": 40.0}]
        log = [self.entry("fired", 45.0, rule="fast"),
               self.entry("fired", 60.0, rule="slow"),
               self.entry("resolved", 80.0, rule="fast"),
               self.entry("resolved", 95.0, rule="slow")]
        records = detection_timeline(crashes, log)
        # incident closes only when the *last* alert resolves
        assert records[0].mttr == pytest.approx(55.0)

    def test_non_crash_events_are_ignored(self):
        events = [{"kind": "restart", "site": "a", "at": 10.0},
                  {"kind": "crash", "site": "b", "at": 20.0}]
        records = detection_timeline(events, [self.entry("fired", 25.0)])
        assert [r.site for r in records] == ["b"]
