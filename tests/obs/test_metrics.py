"""Unit tests for counters, histograms, gauge series, and the recorder."""

import pytest

from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    Histogram,
    MetricsRecorder,
    MetricsRegistry,
)
from repro.vo import build_vo


class TestCounter:
    def test_inc_and_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("rpc.calls", endpoint="x.y")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        # same (name, labels) -> same instrument
        assert registry.counter("rpc.calls", endpoint="x.y") is counter
        # different labels -> different instrument
        assert registry.counter("rpc.calls", endpoint="z").value == 0

    def test_iteration_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        assert [c.name for c in registry.counters()] == ["a", "b"]


class TestHistogram:
    def test_bounds_are_log_scale(self):
        assert HISTOGRAM_BOUNDS[0] == pytest.approx(1e-5)
        ratios = [b / a for a, b in zip(HISTOGRAM_BOUNDS, HISTOGRAM_BOUNDS[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_percentiles_ordered_and_bracketing(self):
        h = Histogram("lat", ())
        for millis in range(1, 101):  # 1ms .. 100ms uniform
            h.observe(millis / 1000.0)
        assert h.count == 100
        assert h.mean == pytest.approx(0.0505)
        assert 0.0 < h.p50 <= h.p95 <= h.p99 <= h.max
        # p50 of a 1..100ms uniform must land near the middle bucket
        assert 0.02 <= h.p50 <= 0.1
        assert h.p99 >= 0.05

    def test_single_observation_clamps_to_value(self):
        h = Histogram("lat", ())
        h.observe(0.42)
        assert h.p50 == pytest.approx(0.42)
        assert h.p99 == pytest.approx(0.42)
        assert h.mean == pytest.approx(0.42)

    def test_empty_histogram_is_zero(self):
        h = Histogram("lat", ())
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(0.5) == 0.0

    def test_overflow_bucket_returns_max(self):
        h = Histogram("lat", ())
        huge = HISTOGRAM_BOUNDS[-1] * 10
        h.observe(huge)
        assert h.p99 == pytest.approx(huge)


class TestTimeSeries:
    def test_record_and_stats(self):
        registry = MetricsRegistry()
        series = registry.series("site.load", site="agrid00")
        series.record(0.0, 1.0)
        series.record(5.0, 3.0)
        assert series.last == 3.0
        assert series.values() == [1.0, 3.0]
        assert series.stats() == (1.0, 2.0, 3.0)

    def test_empty_series_stats(self):
        registry = MetricsRegistry()
        assert registry.series("x").stats() == (0.0, 0.0, 0.0)
        assert registry.series("x").last == 0.0


class TestDisabledRegistry:
    def test_null_instruments_swallow_everything(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(5)
        registry.histogram("h").observe(1.0)
        registry.sample("g", 2.0, site="s")
        assert list(registry.counters()) == []
        assert list(registry.histograms()) == []
        assert list(registry.all_series()) == []
        assert registry.counter("c").value == 0
        assert registry.histogram("h").p99 == 0.0

    def test_site_probes_work_even_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.register_site_probe("s1", lambda: {"requests": 7})
        assert registry.probed_sites() == ["s1"]
        assert registry.collect_site("s1") == {"requests": 7}
        with pytest.raises(KeyError):
            registry.collect_site("unknown")


class TestMetricsRecorder:
    def test_interval_must_be_positive(self):
        vo = build_vo(n_sites=1, seed=9, monitors=False)
        with pytest.raises(ValueError):
            MetricsRecorder(vo, interval=0)

    def test_recorder_samples_site_gauges(self):
        vo = build_vo(n_sites=2, seed=9, monitors=False,
                      observability=True, sample_interval=1.0)
        vo.sim.run(until=10.0)
        recorder = vo.obs.recorder
        assert recorder is not None and recorder.samples_taken >= 9
        series = {s.name for s in vo.obs.metrics.all_series()}
        assert {"site.load", "site.run_queue", "site.inflight_rpcs",
                "site.mds_busy_workers", "site.atr_cache",
                "site.adr_cache"} <= series
        load = vo.obs.metrics.series("site.load", site="agrid00")
        assert len(load.samples) == recorder.samples_taken
        times = [t for t, _ in load.samples]
        assert times == sorted(times)

    def test_stop_halts_sampling(self):
        vo = build_vo(n_sites=1, seed=9, monitors=False,
                      observability=True, sample_interval=1.0)
        vo.sim.run(until=3.0)
        recorder = vo.obs.recorder
        taken = recorder.samples_taken
        recorder.stop()
        vo.sim.run(until=10.0)
        assert recorder.samples_taken == taken


class TestRecorderUnderFaults:
    """Gauge sampling across a FaultPlane crash/restart cycle."""

    @staticmethod
    def _run_crashed_vo():
        from repro.faults import CrashSpec, FaultsConfig

        vo = build_vo(n_sites=2, seed=9, monitors=False,
                      observability=True, sample_interval=1.0,
                      faults=FaultsConfig(crashes=(
                          CrashSpec("agrid01", at=5.0, down_for=10.0),)))
        vo.sim.run(until=25.0)
        return vo

    def test_offline_node_leaves_a_gap_in_its_series(self):
        vo = self._run_crashed_vo()
        load = vo.obs.metrics.series("site.load", site="agrid01")
        times = [t for t, _ in load.samples]
        # no samples inside the outage window [5, 15) — the recorder
        # skips offline nodes, which is how dashboards see the crash
        assert times, "the victim must have samples outside the outage"
        assert not [t for t in times if 5.0 <= t < 15.0]
        assert [t for t in times if t < 5.0]
        assert [t for t in times if t >= 15.0]

    def test_survivor_keeps_a_gapless_series(self):
        vo = self._run_crashed_vo()
        survivor = vo.obs.metrics.series("site.load", site="agrid00")
        times = [t for t, _ in survivor.samples]
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert deltas and all(d == pytest.approx(1.0) for d in deltas)

    def test_sampling_is_deterministic_across_crash_restart(self):
        samples = []
        for _ in range(2):
            vo = self._run_crashed_vo()
            samples.append({
                (s.name, s.labels): list(s.samples)
                for s in vo.obs.metrics.all_series()
            })
        assert samples[0] == samples[1]
