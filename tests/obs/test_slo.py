"""Unit tests for SLO specs, the engine, burn rates and alerts."""

import pytest

from repro.obs.slo import (
    ATTEMPT,
    CALL,
    DEFAULT_ALERTS,
    BurnRateRule,
    SLOEngine,
    SLOSpec,
)
from repro.simkernel import Simulator


def make_engine(*specs, eval_interval=5.0, now=0.0):
    sim = Simulator(seed=1)
    engine = SLOEngine(specs, eval_interval=eval_interval)
    engine.bind(sim)
    if now:
        sim.run(until=now)
    return sim, engine


class TestSpecs:
    def test_burn_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule("bad", window=0.0, threshold=1.0)
        with pytest.raises(ValueError):
            BurnRateRule("bad", window=30.0, threshold=0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(name="s", endpoint="a.b", target=1.0)
        with pytest.raises(ValueError):
            SLOSpec(name="s", endpoint="a.b", objective="uptime")
        with pytest.raises(ValueError):
            SLOSpec(name="s", endpoint="a.b", objective="latency")
        with pytest.raises(ValueError):
            SLOSpec(name="s", endpoint="a.b", level="request")

    def test_budget_is_one_minus_target(self):
        assert SLOSpec(name="s", endpoint="a.b", target=0.99).budget == \
            pytest.approx(0.01)

    def test_endpoint_matching(self):
        exact = SLOSpec(name="e", endpoint="glare-rdm.get_deployments")
        assert exact.matches("glare-rdm.get_deployments")
        assert not exact.matches("glare-rdm.sp_lookup")
        family = SLOSpec(name="f", endpoint="glare-rdm.*")
        assert family.matches("glare-rdm.sp_lookup")
        assert not family.matches("glare-adm.install")
        everything = SLOSpec(name="g", endpoint="*")
        assert everything.matches("anything.at_all")

    def test_latency_objective_classifies_by_threshold(self):
        spec = SLOSpec(name="lat", endpoint="a.b", objective="latency",
                       threshold_s=0.5)
        assert spec.classify(True, 0.4)
        assert not spec.classify(True, 0.6)
        assert not spec.classify(False, 0.1)  # failures are never good

    def test_default_alerts_are_fast_and_slow(self):
        names = [rule.name for rule in DEFAULT_ALERTS]
        assert names == ["fast", "slow"]
        fast, slow = DEFAULT_ALERTS
        assert fast.window < slow.window
        assert fast.threshold > slow.threshold


class TestEngineIntake:
    def test_engine_requires_specs(self):
        with pytest.raises(ValueError):
            SLOEngine(())

    def test_engine_rejects_duplicate_names(self):
        spec = SLOSpec(name="dup", endpoint="a.*")
        with pytest.raises(ValueError):
            SLOEngine((spec, spec))

    def test_record_routes_by_level_and_endpoint(self):
        attempt = SLOSpec(name="att", endpoint="svc.*", level=ATTEMPT)
        call = SLOSpec(name="cal", endpoint="svc.op", level=CALL)
        _, engine = make_engine(attempt, call)
        engine.record("svc.op", 0.0, 1.0, ok=True, level=ATTEMPT)
        engine.record("svc.op", 0.0, 1.0, ok=False, level=CALL)
        engine.record("other.op", 0.0, 1.0, ok=False, level=ATTEMPT)
        att = engine.status("att")
        cal = engine.status("cal")
        assert (att.total, att.bad) == (1, 0)
        assert (cal.total, cal.bad) == (1, 1)
        # the other.op event matched no spec
        assert engine.events_recorded == 2

    def test_status_verdicts(self):
        spec = SLOSpec(name="s", endpoint="a.*", target=0.9)
        _, engine = make_engine(spec)
        for i in range(9):
            engine.record("a.b", 0.0, 0.1, ok=True)
        engine.record("a.b", 0.0, 0.1, ok=False)
        status = engine.status("s")
        assert status.good_rate == pytest.approx(0.9)
        assert status.budget_consumed == pytest.approx(1.0)
        assert status.verdict == "met"
        engine.record("a.b", 0.0, 0.1, ok=False)
        assert engine.status("s").verdict == "exhausted"
        assert engine.verdicts() == {"s": "exhausted"}

    def test_unknown_status_name_raises(self):
        _, engine = make_engine(SLOSpec(name="s", endpoint="a.*"))
        with pytest.raises(KeyError):
            engine.status("nope")


class TestBurnRates:
    def test_burn_rate_windows_and_prunes(self):
        spec = SLOSpec(name="s", endpoint="a.*", target=0.9,
                       alerts=(BurnRateRule("fast", 10.0, 1.0),))
        sim, engine = make_engine(spec)
        # 5 bad events at t in [0, 5), 5 good at t in [5, 10)
        for t in range(5):
            engine.record("a.b", float(t), float(t), ok=False)
        for t in range(5, 10):
            engine.record("a.b", float(t), float(t), ok=True)
        sim.run(until=10.0)
        # window (0, 10]: 9 events (t=0 on the cutoff drops), 4 bad
        burn = engine.burn_rate(spec, 10.0, sim.now)
        assert burn == pytest.approx((4 / 9) / 0.1)
        # a later window sees only good events
        sim.run(until=16.0)
        assert engine.burn_rate(spec, 10.0, sim.now) == 0.0

    def test_burn_rate_zero_when_idle(self):
        spec = SLOSpec(name="s", endpoint="a.*")
        sim, engine = make_engine(spec)
        assert engine.burn_rate(spec, 30.0, sim.now) == 0.0

    def test_evaluate_fires_and_resolves(self):
        spec = SLOSpec(name="s", endpoint="a.*", target=0.9,
                       alerts=(BurnRateRule("fast", 10.0, 2.0),))
        sim, engine = make_engine(spec)
        sim.run(until=5.0)
        for _ in range(5):
            engine.record("a.b", sim.now, sim.now, ok=False)
        engine.evaluate()
        assert engine.alerts_fired() == 1
        assert [a["rule"] for a in engine.active_alerts()] == ["fast"]
        # a second tick while still burning must not re-fire
        engine.evaluate()
        assert engine.alerts_fired() == 1
        # after the window slides past the failures the alert resolves
        sim.run(until=20.0)
        engine.evaluate()
        assert engine.active_alerts() == []
        kinds = [e["kind"] for e in engine.alert_log]
        assert kinds == ["fired", "resolved"]

    def test_evaluator_process_runs_on_cadence(self):
        spec = SLOSpec(name="s", endpoint="a.*", target=0.9,
                       alerts=(BurnRateRule("fast", 10.0, 1.0),))
        sim, engine = make_engine(spec, eval_interval=2.0)
        engine.start()
        engine.start()  # idempotent

        def workload():
            yield sim.timeout(3.0)
            for _ in range(4):
                engine.record("a.b", sim.now, sim.now, ok=False)

        sim.process(workload())
        sim.run(until=11.0)
        assert engine.evaluations == 5
        assert engine.alerts_fired() == 1
        assert engine.alert_log[0]["at"] == pytest.approx(4.0)
        engine.stop()
        sim.run(until=20.0)
        assert engine.evaluations == 5  # stopped: no further ticks


@pytest.mark.slow
class TestScenarioDeterminism:
    def test_churn_scenario_alert_log_is_deterministic(self):
        from repro.obs.scenarios import run_scenario

        logs = []
        verdicts = []
        for _ in range(2):
            vo = run_scenario("churn")
            engine = vo.obs.slo
            assert engine is not None
            logs.append([(e["kind"], e["slo"], e["rule"], e["at"])
                         for e in engine.alert_log])
            verdicts.append(engine.verdicts())
        assert logs[0] == logs[1]
        assert verdicts[0] == verdicts[1]
        assert logs[0], "the churn scenario must fire at least one alert"

    def test_churn_scenario_narrative(self):
        from repro.obs.health import detection_timeline
        from repro.obs.scenarios import run_scenario

        vo = run_scenario("churn")
        engine = vo.obs.slo
        # the outage burns the attempt budget; retries save the calls
        assert engine.verdicts() == {"rdm-attempts": "exhausted",
                                     "rdm-calls": "met"}
        records = detection_timeline(vo.faults.events, engine.alert_log)
        assert len(records) == 1
        assert records[0].detected
        assert records[0].mttd is not None and records[0].mttd <= 30.0
