"""Unit tests for the tracer: nesting, propagation, retention."""

import pytest

from repro.obs.trace import (
    NullTracer,
    TraceContext,
    Tracer,
    span_children,
    walk_tree,
)
from repro.simkernel import Simulator


@pytest.fixture()
def traced_sim():
    sim = Simulator(seed=1)
    tracer = Tracer()
    tracer.bind(sim)
    return sim, tracer


class TestSpanBasics:
    def test_nested_spans_link_parent_child(self, traced_sim):
        sim, tracer = traced_sim

        def work():
            with tracer.span("outer") as outer:
                yield sim.timeout(1)
                with tracer.span("inner") as inner:
                    yield sim.timeout(2)
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
            assert outer.parent_id is None

        sim.process(work())
        sim.run()
        outer, = tracer.find("outer")
        inner, = tracer.find("inner")
        assert (outer.start, outer.end) == (0.0, 3.0)
        assert (inner.start, inner.end) == (1.0, 3.0)
        assert inner.duration == pytest.approx(2.0)

    def test_siblings_share_parent_and_trace(self, traced_sim):
        sim, tracer = traced_sim

        def work():
            with tracer.span("root"):
                with tracer.span("first"):
                    yield sim.timeout(1)
                with tracer.span("second"):
                    yield sim.timeout(1)

        sim.process(work())
        sim.run()
        root, = tracer.find("root")
        first, = tracer.find("first")
        second, = tracer.find("second")
        assert first.parent_id == second.parent_id == root.span_id
        assert len(tracer.traces()) == 1

    def test_separate_top_level_spans_get_separate_traces(self, traced_sim):
        sim, tracer = traced_sim

        def one_span(name):
            with tracer.span(name):
                yield sim.timeout(1)

        proc = sim.process(one_span("a"))
        sim.run(until=proc)
        sim.process(one_span("b"))
        sim.run()
        a, = tracer.find("a")
        b, = tracer.find("b")
        assert a.trace_id != b.trace_id

    def test_interleaved_processes_do_not_cross_attribute(self, traced_sim):
        """Two concurrent processes keep their spans in their own traces."""
        sim, tracer = traced_sim

        def work(name, delay):
            with tracer.span(f"outer:{name}"):
                yield sim.timeout(delay)
                with tracer.span(f"inner:{name}"):
                    yield sim.timeout(delay)

        sim.process(work("a", 1.0))
        sim.process(work("b", 1.5))
        sim.run()
        for name in ("a", "b"):
            outer, = tracer.find(f"outer:{name}")
            inner, = tracer.find(f"inner:{name}")
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
        outer_a, = tracer.find("outer:a")
        outer_b, = tracer.find("outer:b")
        assert outer_a.trace_id != outer_b.trace_id

    def test_exception_records_error_attr(self, traced_sim):
        sim, tracer = traced_sim

        def work():
            with tracer.span("boom"):
                yield sim.timeout(1)
                raise RuntimeError("kaput")

        sim.process(work())
        with pytest.raises(RuntimeError, match="kaput"):
            sim.run()
        boom, = tracer.find("boom")
        assert "kaput" in boom.attrs["error"]

    def test_set_attr_and_kwargs(self, traced_sim):
        sim, tracer = traced_sim
        with tracer.span("s", site="agrid01") as span:
            span.set_attr("outcome", "ok")
        assert span.attrs == {"site": "agrid01", "outcome": "ok"}


class TestPropagation:
    def test_spawned_process_inherits_active_span(self, traced_sim):
        sim, tracer = traced_sim

        def child_work():
            with tracer.span("child"):
                yield sim.timeout(1)

        def parent_work():
            with tracer.span("parent") as span:
                proc = sim.process(child_work())
                yield proc
            return span

        sim.process(parent_work())
        sim.run()
        parent, = tracer.find("parent")
        child, = tracer.find("child")
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_spawn_outside_any_span_starts_fresh_trace(self, traced_sim):
        sim, tracer = traced_sim

        def work():
            with tracer.span("loner"):
                yield sim.timeout(1)

        sim.process(work())
        sim.run()
        loner, = tracer.find("loner")
        assert loner.parent_id is None

    def test_explicit_parent_context_overrides_current(self, traced_sim):
        """Restoring a TraceContext from RPC metadata re-parents a span."""
        sim, tracer = traced_sim
        remote = TraceContext(trace_id=77, span_id=123)

        def work():
            with tracer.span("local-root"):
                with tracer.span("restored", parent=remote) as span:
                    yield sim.timeout(1)
                assert span.trace_id == 77
                assert span.parent_id == 123

        proc = sim.process(work())
        sim.run()
        assert proc.ok

    def test_current_context_reflects_active_span(self, traced_sim):
        sim, tracer = traced_sim
        assert tracer.current_context() is None
        with tracer.span("outer") as span:
            ctx = tracer.current_context()
            assert ctx == TraceContext(span.trace_id, span.span_id)
        assert tracer.current_context() is None


class TestRetention:
    def test_max_spans_ring_keeps_most_recent(self):
        sim = Simulator()
        tracer = Tracer(max_spans=3)
        tracer.bind(sim)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans] == ["s7", "s8", "s9"]
        assert tracer.dropped_spans == 7

    def test_clear_empties_finished(self, traced_sim):
        _, tracer = traced_sim
        with tracer.span("x"):
            pass
        assert tracer.spans
        tracer.clear()
        assert tracer.spans == []


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("anything", site="s") as span:
            span.set_attr("k", "v")
        assert span.context is None
        assert tracer.current_context() is None
        assert tracer.spans == []
        assert tracer.open_spans() == []
        assert tracer.leaked_spans() == []


class TestSpanLifecycle:
    def test_open_spans_track_activation(self, traced_sim):
        sim, tracer = traced_sim

        def work():
            with tracer.span("long"):
                yield sim.timeout(10)

        sim.process(work())
        sim.run(until=5.0)
        assert [s.name for s in tracer.open_spans()] == ["long"]
        sim.run()
        assert tracer.open_spans() == []

    def test_error_path_closes_span(self, traced_sim):
        """An exception through ``with`` must still finish the span."""
        sim, tracer = traced_sim

        def work():
            with tracer.span("failing"):
                yield sim.timeout(1)
                raise RuntimeError("boom")

        sim.process(work())
        with pytest.raises(RuntimeError):
            sim.run()
        assert tracer.open_spans() == []
        failing, = tracer.find("failing")
        assert failing.end == pytest.approx(1.0)
        assert "boom" in failing.attrs["error"]

    def test_open_span_of_live_process_is_not_a_leak(self, traced_sim):
        sim, tracer = traced_sim

        def keepalive():
            with tracer.span("forever"):
                while True:
                    yield sim.timeout(1)

        sim.process(keepalive())
        sim.run(until=5.0)
        assert [s.name for s in tracer.open_spans()] == ["forever"]
        assert tracer.leaked_spans() == []

    def test_span_dropped_by_dead_process_is_a_leak(self, traced_sim):
        """A span never finished by a terminated process is reported."""
        sim, tracer = traced_sim

        def sloppy():
            span = tracer.span("dropped")
            span.__enter__()  # deliberately never exited
            yield sim.timeout(1)

        sim.process(sloppy())
        sim.run()
        leaked = tracer.leaked_spans()
        assert [s.name for s in leaked] == ["dropped"]
        assert leaked[0].end is None


class TestTreeHelpers:
    def test_walk_tree_depths(self, traced_sim):
        sim, tracer = traced_sim

        def work():
            with tracer.span("root"):
                with tracer.span("mid"):
                    with tracer.span("leaf"):
                        yield sim.timeout(1)
                with tracer.span("mid2"):
                    yield sim.timeout(1)

        sim.process(work())
        sim.run()
        walk = [(depth, span.name) for depth, span in walk_tree(tracer.spans)]
        assert walk == [(0, "root"), (1, "mid"), (2, "leaf"), (1, "mid2")]

    def test_span_children_sorted_by_start(self, traced_sim):
        sim, tracer = traced_sim

        def work():
            with tracer.span("root") as root:
                with tracer.span("a"):
                    yield sim.timeout(1)
                with tracer.span("b"):
                    yield sim.timeout(1)
            return root

        sim.process(work())
        sim.run()
        root, = tracer.find("root")
        index = span_children(tracer.spans)
        assert [s.name for s in index[root.span_id]] == ["a", "b"]
