"""End-to-end tracing acceptance tests: one deployment, one trace.

The headline property of the observability layer: a single traced
``get_deployments`` call that triggers an on-demand install produces
ONE trace containing the client RPC, server dispatch, tier-resolution
walk, transfer, install-handler and registration spans — correctly
nested, with monotonically consistent simulated-time stamps.
"""

import pytest

from repro.obs.scenarios import run_scenario
from repro.obs.trace import span_children
from repro.vo import build_vo


@pytest.fixture(scope="module")
def deploy_vo():
    return run_scenario("deploy")


@pytest.fixture(scope="module")
def deploy_trace(deploy_vo):
    tracer = deploy_vo.obs.tracer
    root, = tracer.find("rpc:glare-rdm.get_deployments")
    return tracer.trace_of(root)


def _by_name(spans, name):
    matches = [s for s in spans if s.name == name]
    assert matches, f"span {name!r} missing from trace"
    return matches[0]


class TestDeployTraceTree:
    def test_single_trace_covers_the_whole_pipeline(self, deploy_trace):
        names = {span.name for span in deploy_trace}
        for expected in (
            "rpc:glare-rdm.get_deployments",
            "serve:glare-rdm.get_deployments",
            "glare:get_deployments",
            "tier:local", "tier:group", "tier:super-peer", "tier:on-demand",
            "deploy:on_demand", "deploy:candidates", "deploy:install",
            "rpc:glare-rdm.deploy", "serve:glare-rdm.deploy",
            "install:fetch_deployfile", "gridftp:fetch",
            "install:handler", "install:register", "install:notify",
            "registry:register_deployment",
        ):
            assert expected in names

    def test_parent_child_nesting(self, deploy_trace):
        rpc = _by_name(deploy_trace, "rpc:glare-rdm.get_deployments")
        serve = _by_name(deploy_trace, "serve:glare-rdm.get_deployments")
        resolve = _by_name(deploy_trace, "glare:get_deployments")
        on_demand = _by_name(deploy_trace, "tier:on-demand")
        deploy = _by_name(deploy_trace, "deploy:on_demand")
        handler = _by_name(deploy_trace, "install:handler")

        assert rpc.parent_id is None  # the trace root
        assert serve.parent_id == rpc.span_id
        assert resolve.parent_id == serve.span_id
        assert on_demand.parent_id == resolve.span_id
        assert deploy.parent_id == on_demand.span_id
        # the tier walk hangs off the resolution span
        for tier in ("tier:local", "tier:group", "tier:super-peer"):
            assert _by_name(deploy_trace, tier).parent_id == resolve.span_id
        # handler steps hang off the handler execution span
        steps = [s for s in deploy_trace if s.name.startswith("step:")]
        assert steps and all(s.parent_id == handler.span_id for s in steps)

    def test_remote_install_reparents_through_rpc_metadata(self, deploy_trace):
        """The install runs on another site's process, yet joins the trace."""
        deploy_rpc = _by_name(deploy_trace, "rpc:glare-rdm.deploy")
        deploy_serve = _by_name(deploy_trace, "serve:glare-rdm.deploy")
        assert deploy_serve.parent_id == deploy_rpc.span_id
        assert deploy_serve.trace_id == deploy_rpc.trace_id
        # install spans live under that server-side dispatch
        fetch = _by_name(deploy_trace, "install:fetch_deployfile")
        assert fetch.parent_id == deploy_serve.span_id

    def test_timestamps_monotonically_consistent(self, deploy_trace):
        spans = {s.span_id: s for s in deploy_trace}
        for span in deploy_trace:
            assert span.end is not None and span.end >= span.start
            parent = spans.get(span.parent_id)
            if parent is not None:
                # children start after their parent and within its window
                assert span.start >= parent.start
                assert span.start <= parent.end

    def test_synchronous_chain_is_time_contained(self, deploy_trace):
        chain = ["rpc:glare-rdm.get_deployments",
                 "serve:glare-rdm.get_deployments",
                 "glare:get_deployments", "tier:on-demand",
                 "deploy:on_demand"]
        spans = [_by_name(deploy_trace, name) for name in chain]
        for parent, child in zip(spans, spans[1:]):
            assert parent.start <= child.start
            assert child.end <= parent.end

    def test_tree_has_single_root(self, deploy_trace):
        index = span_children(deploy_trace)
        known = {s.span_id for s in deploy_trace}
        roots = [s for s in deploy_trace
                 if s.parent_id is None or s.parent_id not in known]
        assert len(roots) == 1
        assert roots[0].name == "rpc:glare-rdm.get_deployments"

    def test_resolution_span_attributes(self, deploy_trace):
        resolve = _by_name(deploy_trace, "glare:get_deployments")
        assert resolve.attrs["tier"] == "on-demand"
        assert resolve.attrs["type"] == "Wien2k"
        assert resolve.attrs["deployments"] >= 1


class TestDeployMetrics:
    def test_rpc_endpoint_histograms(self, deploy_vo):
        registry = deploy_vo.obs.metrics
        latency = registry.histogram("rpc.latency",
                                     endpoint="glare-rdm.get_deployments")
        assert latency.count == 1
        assert 0.0 < latency.p50 <= latency.p95 <= latency.p99

    def test_tier_counter_attribution(self, deploy_vo):
        registry = deploy_vo.obs.metrics
        assert registry.counter("glare.resolutions", tier="on-demand").value == 1

    def test_provisioning_stage_histograms(self, deploy_vo):
        registry = deploy_vo.obs.metrics
        for stage in ("provision.candidate_selection", "provision.transfer",
                      "provision.registration", "provision.notification"):
            histogram = registry.histogram(stage)
            assert histogram.count >= 1, f"{stage} never observed"


class TestScenarios:
    def test_lookup_scenario_contrasts_cache(self):
        vo = run_scenario("lookup")
        resolves = vo.obs.tracer.find("glare:get_deployments")
        assert [s.attrs["tier"] for s in resolves] == ["on-demand", "local"]
        # the cached resolution is orders of magnitude faster
        assert resolves[1].duration < resolves[0].duration / 100

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("bogus")


class TestDisabledObservability:
    def test_default_vo_traces_nothing(self):
        vo = build_vo(n_sites=2, seed=11, monitors=False)
        assert not vo.obs.enabled
        vo.sim.run(until=5.0)
        assert vo.obs.tracer.spans == []
        assert list(vo.obs.metrics.counters()) == []
        assert vo.obs.recorder is None
