"""Planner unit tests: the plan is a pure function of spec + gauges,
respects min/max bounds and placement constraints, and routes around
bad health — the satellite contracts of the orchestration ISSUE."""

import pytest

from repro.obs.health import DEGRADED, DOWN
from repro.orchestrate.planner import Observed, Planner, SiteObservation
from repro.orchestrate.spec import DeploymentSpec, OrchestrationConfig
from repro.site.description import SiteDescription


def obs(site, utilization=0.1, load=0.0, run_queue=0, shed=0,
        health="healthy", description=None):
    return SiteObservation(site=site, utilization=utilization, load=load,
                           run_queue=run_queue, shed=shed, health=health,
                           description=description)


def observed(sites, **placements):
    return Observed(sites=tuple(sites),
                    placements={t: tuple(s) for t, s in placements.items()})


SPEC = DeploymentSpec(type_name="Hot", min_replicas=1, max_replicas=3,
                      target_utilization=0.6)


class TestPurity:
    def test_same_inputs_same_plan(self):
        planner = Planner(OrchestrationConfig())
        world = observed([obs("a", 0.9), obs("b", 0.2), obs("c", 0.4)],
                         Hot=["a"])
        first = planner.plan([SPEC], world)
        second = planner.plan([SPEC], world)
        assert first == second

    def test_inputs_not_mutated(self):
        planner = Planner(OrchestrationConfig())
        sites = [obs("a", 0.9), obs("b", 0.2)]
        world = observed(sites, Hot=["a"])
        before = (world.sites, dict(world.placements))
        planner.plan([SPEC], world)
        assert (world.sites, dict(world.placements)) == before

    def test_plan_is_independent_of_observation_order(self):
        planner = Planner(OrchestrationConfig())
        sites = [obs("a", 0.9), obs("b", 0.2), obs("c", 0.4)]
        forward = planner.plan([SPEC], observed(sites, Hot=["a"]))
        backward = planner.plan([SPEC], observed(sites[::-1], Hot=["a"]))
        assert forward == backward


class TestBounds:
    def test_bootstrap_to_min_replicas(self):
        planner = Planner(OrchestrationConfig())
        spec = DeploymentSpec(type_name="Hot", min_replicas=2, max_replicas=4)
        plan = planner.plan([spec], observed([obs("a"), obs("b"), obs("c")]))
        tp = plan.for_type("Hot")
        assert tp.reason == "bootstrap"
        assert tp.desired == 2
        assert len(tp.add) == 2

    def test_scale_out_never_exceeds_max(self):
        planner = Planner(OrchestrationConfig())
        spec = DeploymentSpec(type_name="Hot", min_replicas=1, max_replicas=2,
                              target_utilization=0.5)
        world = observed([obs("a", 0.95), obs("b", 0.95), obs("c", 0.1)],
                         Hot=["a", "b"])
        tp = planner.plan([spec], world).for_type("Hot")
        assert tp.desired == 2  # clamped: pressure high but already at max
        assert tp.add == ()

    def test_scale_in_never_goes_below_min(self):
        planner = Planner(OrchestrationConfig())
        world = observed([obs("a", 0.01), obs("b", 0.01)], Hot=["a"])
        tp = planner.plan([SPEC], world).for_type("Hot")
        assert tp.desired == 1
        assert tp.remove == ()

    def test_shed_forces_scale_out_below_threshold(self):
        planner = Planner(OrchestrationConfig())
        world = observed([obs("a", 0.2, shed=17), obs("b", 0.1)], Hot=["a"])
        tp = planner.plan([SPEC], world).for_type("Hot")
        assert tp.reason == "scale-out"
        assert tp.add == ("b",)

    def test_scale_out_picks_least_loaded_site(self):
        planner = Planner(OrchestrationConfig())
        world = observed(
            [obs("a", 0.9), obs("b", 0.5), obs("c", 0.2)], Hot=["a"]
        )
        tp = planner.plan([SPEC], world).for_type("Hot")
        assert tp.reason == "scale-out"
        assert tp.add == ("c",)

    def test_scale_in_drains_lexicographic_tail(self):
        planner = Planner(OrchestrationConfig())
        world = observed(
            [obs("a", 0.05), obs("b", 0.05), obs("c", 0.05)],
            Hot=["a", "b", "c"],
        )
        tp = planner.plan([SPEC], world).for_type("Hot")
        assert tp.reason == "scale-in"
        assert tp.remove == ("c",)
        assert tp.placements == ("a", "b")


class TestConstraintsAndHealth:
    def test_placement_constraints_filter_candidates(self):
        planner = Planner(OrchestrationConfig())
        linux = SiteDescription(name="b", os="Linux")
        windows = SiteDescription(name="c", os="Windows")
        spec = DeploymentSpec(type_name="Hot", min_replicas=2, max_replicas=3,
                              constraints=(("os", "Linux"),))
        world = observed([obs("a", description=None),
                         obs("b", description=linux),
                         obs("c", description=windows)])
        tp = planner.plan([spec], world).for_type("Hot")
        # no description fails closed; only the Linux site qualifies
        assert tp.add == ("b",)

    def test_avoid_sites_excluded(self):
        planner = Planner(OrchestrationConfig())
        spec = DeploymentSpec(type_name="Hot", avoid_sites=("a",))
        tp = planner.plan([spec], observed([obs("a"), obs("b")]))
        assert tp.for_type("Hot").add == ("b",)

    def test_down_site_routed_around(self):
        planner = Planner(OrchestrationConfig())
        world = observed([obs("a", health=DOWN), obs("b", 0.3)], Hot=["a"])
        tp = planner.plan([SPEC], world).for_type("Hot")
        assert "a" in tp.remove
        assert tp.add == ("b",)
        assert tp.reason != "steady"

    def test_degraded_respects_avoid_degraded_toggle(self):
        world = observed([obs("a", health=DEGRADED), obs("b", 0.3)])
        strict = Planner(OrchestrationConfig(avoid_degraded=True))
        lenient = Planner(OrchestrationConfig(avoid_degraded=False))
        assert strict.plan([SPEC], world).for_type("Hot").add == ("b",)
        assert lenient.plan([SPEC], world).for_type("Hot").add == ("a",)

    def test_no_eligible_site_yields_no_actions(self):
        planner = Planner(OrchestrationConfig())
        spec = DeploymentSpec(type_name="Hot", avoid_sites=("a", "b"))
        tp = planner.plan([spec], observed([obs("a"), obs("b")]))
        plan = tp.for_type("Hot")
        assert plan.add == () and plan.remove == ()
        assert tp.converged


class TestPlanShape:
    def test_types_sorted_and_converged_flag(self):
        planner = Planner(OrchestrationConfig())
        specs = [DeploymentSpec(type_name="Zeta"),
                 DeploymentSpec(type_name="Alpha")]
        world = observed([obs("a", 0.3)], Zeta=["a"], Alpha=["a"])
        plan = planner.plan(specs, world)
        assert [t.type_name for t in plan.types] == ["Alpha", "Zeta"]
        assert plan.converged
        assert plan.actions == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DeploymentSpec(type_name="Hot", min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            DeploymentSpec(type_name="Hot", target_utilization=0.0)
