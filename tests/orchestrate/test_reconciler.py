"""Reconciler tests against a scripted fake actuator — no VO, no RPC.

The policy/mechanism split exists exactly so the control loop can be
unit-tested like this: the fake actuator plays back per-round gauge
reports and records every actuation, and the tests assert on the
loop's decisions (spec replication, scale-out, damped scale-in,
draining bookkeeping, convergence tracking, shutdown hygiene).
"""

import math

from repro.orchestrate.actuator import Actuator
from repro.orchestrate.reconciler import Reconciler
from repro.orchestrate.spec import DeploymentSpec, OrchestrationConfig
from repro.simkernel import Simulator


class FakeRdm:
    def __init__(self, sim):
        self.sim = sim


class ScriptedActuator(Actuator):
    """Plays back a list of per-round site reports; records actuations.

    ``script`` is a list of rounds; each round maps site name -> the
    ``report_observed`` wire dict (``None`` = unreachable).  The last
    round repeats forever.  Installs immediately add a deployment to
    subsequent reports; drains remove it (the fake "sweeps" instantly
    at the drain deadline).
    """

    def __init__(self, script):
        self.script = script
        self.round = 0
        self.installed = []   # (type, site)
        self.drained = []     # (site, key, when)
        self.applied = []     # DesiredState documents
        self._extra = {}      # site -> {type: [keys]} added by installs
        self._removed = set() # keys drained

    def _current(self):
        index = min(self.round, len(self.script) - 1)
        return self.script[index]

    def sites(self):
        return sorted(self._current())
        yield  # pragma: no cover - generator marker

    def probe(self, names):
        return {}
        yield  # pragma: no cover - generator marker

    def observe(self, site, types):
        report = self._current().get(site)
        if report is None:
            return None
            yield  # pragma: no cover
        report = dict(report)
        deployments = {t: list(keys)
                       for t, keys in report.get("deployments", {}).items()}
        for type_name, keys in self._extra.get(site, {}).items():
            deployments.setdefault(type_name, []).extend(keys)
        report["deployments"] = {
            t: [k for k in keys if k not in self._removed]
            for t, keys in deployments.items()
        }
        return report
        yield  # pragma: no cover - generator marker

    def install(self, type_name, site):
        self.installed.append((type_name, site))
        key = f"{site}:{type_name.lower()}-bin"
        self._extra.setdefault(site, {}).setdefault(type_name, []).append(key)
        return "installed"
        yield  # pragma: no cover - generator marker

    def set_lifetime(self, site, key, when):
        self.drained.append((site, key, when))
        self._removed.add(key)
        return True
        yield  # pragma: no cover - generator marker

    def apply_spec(self, state):
        self.applied.append(state)
        return len(self._current())
        yield  # pragma: no cover - generator marker


def report(utilization=0.1, shed_total=0, deployments=None):
    return {
        "utilization": utilization,
        "load": 0.0,
        "run_queue": 0,
        "shed_by_op": {"instantiate": shed_total} if shed_total else {},
        "deployments": deployments or {},
    }


CFG = OrchestrationConfig(
    specs=(DeploymentSpec(type_name="Hot", min_replicas=1, max_replicas=3,
                          target_utilization=0.6),),
    interval=2.0,
    drain_grace=1.0,
    scale_in_rounds=2,
    utilization_smoothing=1.0,  # raw samples: no EWMA lag in tests
)


def drive_rounds(reconciler, n):
    """Run ``n`` reconcile_once rounds back-to-back inside the sim."""
    plans = []

    def driver():
        for _ in range(n):
            plan = yield from reconciler.reconcile_once()
            plans.append(plan)
            yield reconciler.sim.timeout(CFG.interval)

    reconciler.sim.process(driver(), name="test-driver")
    reconciler.sim.run()
    return plans


def build(script, config=CFG):
    sim = Simulator()
    actuator = ScriptedActuator(script)
    reconciler = Reconciler(FakeRdm(sim), config, actuator=actuator)
    # the fake advances its script in lockstep with the driver
    original = reconciler.reconcile_once

    def stepping():
        plan = yield from original()
        actuator.round += 1
        return plan

    reconciler.reconcile_once = stepping
    return sim, actuator, reconciler


BOOT = {"a": report(deployments={"Hot": ["a:hot-bin"]}), "b": report()}


class TestSpecReplication:
    def test_first_round_applies_revision_one_once(self):
        sim, actuator, reconciler = build([BOOT])
        drive_rounds(reconciler, 3)
        assert len(actuator.applied) == 1
        state = actuator.applied[0]
        assert state.revision == 1
        assert set(state.specs) == {"Hot"}


class TestScaleOut:
    def test_hot_type_scales_out_to_coldest_site(self):
        script = [{
            "a": report(utilization=0.95, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.4),
            "c": report(utilization=0.1),
        }]
        sim, actuator, reconciler = build(script)
        drive_rounds(reconciler, 1)
        assert actuator.installed == [("Hot", "c")]

    def test_shedding_site_forces_scale_out(self):
        script = [{
            "a": report(utilization=0.2, shed_total=9,
                        deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.1),
        }]
        sim, actuator, reconciler = build(script)
        drive_rounds(reconciler, 1)
        assert actuator.installed == [("Hot", "b")]

    def test_shed_counter_is_differenced_not_cumulative(self):
        # the same cumulative total in later rounds = no new sheds, and
        # utilization is low, so after the first install the loop must
        # not keep scaling out
        script = [{
            "a": report(utilization=0.9, shed_total=9,
                        deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.1),
            "c": report(utilization=0.1),
        }, {
            "a": report(utilization=0.4, shed_total=9,
                        deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.4),
            "c": report(utilization=0.1),
        }]
        sim, actuator, reconciler = build(script)
        drive_rounds(reconciler, 3)
        assert actuator.installed == [("Hot", "b")]


class TestScaleIn:
    def test_scale_in_damped_until_streak(self):
        quiet = {
            "a": report(utilization=0.05, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.05, deployments={"Hot": ["b:hot-bin"]}),
        }
        sim, actuator, reconciler = build([quiet])
        drive_rounds(reconciler, 1)
        assert actuator.drained == []  # first proposal only starts the streak
        drive_rounds(reconciler, 1)
        assert [d[0] for d in actuator.drained] == ["b"]  # lexicographic tail

    def test_drain_deadline_honours_grace(self):
        quiet = {
            "a": report(utilization=0.05, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.05, deployments={"Hot": ["b:hot-bin"]}),
        }
        sim, actuator, reconciler = build([quiet])
        drive_rounds(reconciler, 2)
        (site, key, when) = actuator.drained[0]
        assert key == "b:hot-bin"
        assert when == sim.now - CFG.interval + CFG.drain_grace

    def test_draining_pair_not_double_drained(self):
        quiet = {
            "a": report(utilization=0.05, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.05, deployments={"Hot": ["b:hot-bin"]}),
        }
        sim, actuator, reconciler = build([quiet])
        drive_rounds(reconciler, 4)
        assert len(actuator.drained) == 1


class TestUnreachableSites:
    def test_unreachable_site_placements_vanish(self):
        script = [{
            "a": None,
            "b": report(utilization=0.1),
        }]
        sim, actuator, reconciler = build(script)
        plans = drive_rounds(reconciler, 1)
        # "a" held the only replica but did not answer: bootstrap on "b"
        tp = plans[0].for_type("Hot")
        assert tp.reason == "bootstrap"
        assert actuator.installed == [("Hot", "b")]


class TestConvergenceAndDigest:
    def test_convergence_time_recorded(self):
        script = [{
            "a": report(utilization=0.9, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.1),
        }, {
            "a": report(utilization=0.5, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.5),
        }]
        sim, actuator, reconciler = build(script)
        drive_rounds(reconciler, 2)
        assert reconciler.convergence_times == [CFG.interval]
        assert reconciler.rounds[0].converged is False
        assert reconciler.rounds[1].converged is True

    def test_fingerprint_deterministic_across_runs(self):
        script = [{
            "a": report(utilization=0.9, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.1),
        }]
        prints = []
        for _ in range(2):
            sim, actuator, reconciler = build(script)
            drive_rounds(reconciler, 3)
            prints.append(reconciler.fingerprint())
        assert prints[0] == prints[1]

    def test_replica_history_tracks_observed_counts(self):
        script = [{
            "a": report(utilization=0.9, deployments={"Hot": ["a:hot-bin"]}),
            "b": report(utilization=0.1),
        }]
        sim, actuator, reconciler = build(script)
        drive_rounds(reconciler, 2)
        counts = [n for _, n in reconciler.replica_history("Hot")]
        assert counts == [1, 2]  # the install shows up next round


class TestLifecycle:
    def test_stop_leaves_no_standing_agenda_entry(self):
        sim, actuator, reconciler = build([BOOT])
        reconciler.start()
        sim.run(until=CFG.interval * 2.5)
        assert reconciler.rounds  # the loop did run
        reconciler.stop()
        reconciler.stop()  # idempotent
        sim.run()  # deliver the interrupt; the cancelled tick is gone
        assert math.isinf(sim.peek())

    def test_double_start_rejected(self):
        sim, actuator, reconciler = build([BOOT])
        reconciler.start()
        try:
            reconciler.start()
        except RuntimeError:
            pass
        else:
            raise AssertionError("second start() must raise")
