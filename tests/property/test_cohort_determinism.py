"""Property: the cohort-batched ``run()`` fast loop ≡ per-event ``step()``.

The bucket-queue agenda drains same-timestamp cohorts in one clock
update (see the kernel module docstring); these tests pin the contract
that batching is *invisible*: for seeded workloads built almost
entirely out of tied timestamps, the fast loop must dispatch the exact
event sequence the per-event ``step()`` debug path does — including
urgent preemption inside a cohort and the Timeout free-list recycling
along the way — and the kernel-trace sha256 must agree.
"""

from __future__ import annotations

import hashlib
import random
import re

import pytest

from repro.simkernel import Simulator
from repro.simkernel.kernel import EmptySchedule

#: heavy repetition → most timestamps collide into multi-event cohorts
DELAY_GRID = (0.25, 0.5, 0.5, 1.0, 1.0, 1.0, 2.0)

_ADDR = re.compile(r"0x[0-9a-f]+")


def _schedule(seed: int, n_procs: int = 12, ticks: int = 40):
    rng = random.Random(seed)
    return [[rng.choice(DELAY_GRID) for _ in range(ticks)]
            for _ in range(n_procs)]


def _build(sim: Simulator, order: list, schedule) -> None:
    """A cohort-heavy workload: tickers, bare events, an interrupt.

    Everything lands on grid timestamps, so cohorts of a dozen events
    are the norm, and the interrupt exercises urgent preemption in the
    middle of a cohort drain.
    """

    def ticker(pid: int):
        for tick, delay in enumerate(schedule[pid]):
            yield sim.timeout(delay)
            order.append(("tick", pid, tick, sim.now))

    for pid in range(len(schedule)):
        sim.process(ticker(pid), name=f"ticker-{pid}")

    # bare events succeeding straight into the agenda (no process)
    for index, delay in enumerate((0.5, 1.0, 1.0, 2.5, 2.5, 2.5)):
        event = sim.event(name=f"herald-{index}")
        event.subscribe(
            lambda e, index=index: order.append(("herald", index, sim.now))
        )
        event.succeed(value=index, delay=delay)

    def victim():
        try:
            yield sim.timeout(1000.0)
        except Exception:
            order.append(("interrupted", sim.now))
            yield sim.timeout(0.5)
            order.append(("recovered", sim.now))

    target = sim.process(victim(), name="victim")

    def attacker():
        # fires at t=3.0, a grid timestamp with a fat cohort: the
        # urgent interrupt must preempt the cohort's remaining events
        yield sim.timeout(3.0)
        order.append(("attack", sim.now))
        target.interrupt("now")

    sim.process(attacker(), name="attacker")


def _drain_by_step(sim: Simulator) -> None:
    while True:
        try:
            sim.step()
        except EmptySchedule:
            return


def _digest(order: list) -> str:
    return hashlib.sha256(repr(order).encode()).hexdigest()


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_run_matches_step_order_and_recycling(seed):
    schedule = _schedule(seed)

    fast_order: list = []
    fast_sim = Simulator(seed=seed)
    _build(fast_sim, fast_order, schedule)
    fast_sim.run()

    step_order: list = []
    step_sim = Simulator(seed=seed)
    _build(step_sim, step_order, schedule)
    _drain_by_step(step_sim)

    assert fast_order == step_order
    assert _digest(fast_order) == _digest(step_order)
    assert fast_sim.now == step_sim.now
    # recycling engaged in the fast loop without perturbing the order
    # above (eligibility is refcount-sensitive, so the two pools need
    # not hold the same timeouts — only the dispatch order is
    # contractual)
    assert fast_sim._timeout_pool, "cohort drain never recycled a timeout"


@pytest.mark.parametrize("seed", [3, 11])
def test_until_event_form_matches_step(seed):
    schedule = _schedule(seed, n_procs=8, ticks=25)

    def build_with_target(sim, order):
        _build(sim, order, schedule)
        target = sim.event(name="target")
        target.subscribe(lambda e: order.append(("target", sim.now)))
        target.succeed(value="done", delay=4.5)
        return target

    fast_order: list = []
    fast_sim = Simulator(seed=seed)
    fast_target = build_with_target(fast_sim, fast_order)
    assert fast_sim.run(until=fast_target) == "done"

    step_order: list = []
    step_sim = Simulator(seed=seed)
    step_target = build_with_target(step_sim, step_order)
    while not step_target.processed:
        step_sim.step()

    # the fast loop stopped right after the target's dispatch — not a
    # single event earlier or later than the per-event path
    assert fast_order == step_order
    assert fast_sim.now == step_sim.now


def test_trace_sha_matches_between_run_and_step():
    """The traced event log hashes identically however it is driven."""
    schedule = _schedule(seed=5)

    def traced_digest(drive) -> str:
        order: list = []
        sim = Simulator(seed=5, trace=True)
        _build(sim, order, schedule)
        drive(sim)
        normalized = "\n".join(
            f"{when:.9f} {_ADDR.sub('0x0', label)}"
            for when, label in sim.trace_log
        )
        return hashlib.sha256(normalized.encode()).hexdigest()

    assert traced_digest(lambda sim: sim.run()) == traced_digest(_drain_by_step)


def test_recycled_timeouts_are_reused():
    """A drained run leaves a pool that the next timeout() draws from."""
    sim = Simulator(seed=9)

    def burner():
        for _ in range(50):
            yield sim.timeout(0.5)

    sim.process(burner(), name="burner")
    sim.run()
    pool_len = len(sim._timeout_pool)
    assert pool_len > 0
    pooled = sim._timeout_pool[-1]
    fresh = sim.timeout(0.25, value="again")
    assert fresh is pooled  # identity reuse, not a new allocation
    assert len(sim._timeout_pool) == pool_len - 1
    assert fresh.delay == 0.25 and fresh._value == "again"
