"""Property-based tests: deploy-file ordering and lease invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.glare.deployfile import BuildRecipe, BuildStep
from repro.glare.errors import LeaseError, NotAuthorized
from repro.gridarm import LeaseKind, ReservationService
from repro.net.network import Network
from repro.net.topology import Topology
from repro.simkernel import Simulator


@st.composite
def recipes(draw):
    """A random acyclic recipe: steps depend only on earlier steps."""
    n = draw(st.integers(min_value=1, max_value=12))
    steps = []
    for index in range(n):
        pool = [s.name for s in steps]
        depends = draw(st.lists(st.sampled_from(pool), max_size=3,
                                unique=True)) if pool else []
        steps.append(BuildStep(name=f"s{index}", task="make", depends=depends))
    recipe = BuildRecipe(name="r", steps=steps)
    return recipe


@given(recipes())
@settings(max_examples=150)
def test_ordered_steps_is_topological(recipe):
    ordered = recipe.ordered_steps()
    assert len(ordered) == len(recipe.steps)
    position = {step.name: index for index, step in enumerate(ordered)}
    for step in recipe.steps:
        for dependency in step.depends:
            assert position[dependency] < position[step.name]


@given(recipes())
@settings(max_examples=100)
def test_ordering_is_deterministic(recipe):
    first = [s.name for s in recipe.ordered_steps()]
    second = [s.name for s in recipe.ordered_steps()]
    assert first == second


# --- lease concurrency invariant --------------------------------------------

@st.composite
def lease_scripts(draw):
    """Random authorize/finish interleavings for one shared lease."""
    max_concurrent = draw(st.integers(min_value=1, max_value=4))
    events = draw(st.lists(st.sampled_from(["auth", "finish"]),
                           min_size=1, max_size=30))
    return max_concurrent, events


@given(lease_scripts())
@settings(max_examples=100)
def test_shared_lease_never_exceeds_limit(script):
    max_concurrent, events = script
    sim = Simulator()
    topo = Topology()
    topo.add_site("h")
    net = Network(sim, topo)
    net.add_node("h")
    service = ReservationService(net, "h")
    ticket = service.make_lease("d", "user", 0.0, 1e9,
                                kind=LeaseKind.SHARED,
                                max_concurrent=max_concurrent)
    lease = service.leases["d"][0]
    active = 0

    def driver():
        nonlocal active
        for event in events:
            if event == "auth":
                try:
                    yield from service.authorize_instantiation(
                        "d", ticket.ticket_id, "user")
                    active += 1
                except NotAuthorized:
                    pass
            elif active > 0:
                service.instantiation_finished("d", ticket.ticket_id)
                active -= 1
            assert 0 <= lease.active_instances <= max_concurrent
            assert lease.active_instances == active

    proc = sim.process(driver())
    sim.run(until=proc)
