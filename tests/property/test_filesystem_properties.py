"""Property-based tests: simulated filesystem invariants."""

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.site.filesystem import Filesystem, normalize

segments = st.text(alphabet=string.ascii_lowercase + string.digits,
                   min_size=1, max_size=8)
paths = st.lists(segments, min_size=1, max_size=5).map(
    lambda parts: "/" + "/".join(parts)
)


@given(paths)
def test_normalize_idempotent(path):
    assert normalize(normalize(path)) == normalize(path)


@given(st.lists(segments, min_size=1, max_size=6))
def test_normalize_strips_dot_segments(parts):
    messy = "/" + "/./".join(parts) + "/."
    assert normalize(messy) == "/" + "/".join(parts)


@given(st.lists(st.tuples(paths, st.integers(min_value=0, max_value=10**9)),
                min_size=1, max_size=15))
@settings(max_examples=100)
def test_put_get_roundtrip(entries):
    fs = Filesystem()
    expected = {}
    for path, size in entries:
        try:
            fs.put_file(path, size=size)
        except Exception:
            # path collides with a directory created for another file
            continue
        expected[normalize(path)] = size
    for path, size in expected.items():
        assert fs.get_file(path).size == size
    count, total = fs.disk_usage()
    assert count == len(expected)
    assert total == sum(expected.values())


@given(st.lists(paths, min_size=1, max_size=10, unique=True))
@settings(max_examples=100)
def test_rmtree_removes_entire_subtree(file_paths):
    fs = Filesystem()
    created = []
    for path in file_paths:
        try:
            fs.put_file("/data" + path, size=1)
            created.append(normalize("/data" + path))
        except Exception:
            continue
    assume(created)
    removed = fs.rmtree("/data")
    assert removed == len(set(created))
    for path in created:
        assert not fs.exists(path)
    assert not fs.is_dir("/data")


@given(st.lists(segments, min_size=1, max_size=8, unique=True))
@settings(max_examples=100)
def test_listdir_sees_all_children(names):
    fs = Filesystem()
    for name in names:
        fs.put_file(f"/dir/{name}", size=1)
    assert fs.listdir("/dir") == sorted(names)


@given(st.lists(segments, min_size=1, max_size=6, unique=True),
       st.booleans())
@settings(max_examples=100)
def test_find_executables_only_in_bin(names, executable):
    fs = Filesystem()
    for name in names:
        fs.put_file(f"/app/bin/{name}", size=10, executable=executable)
        fs.put_file(f"/app/lib/{name}", size=10, executable=True)
    found = {e.name for e in fs.find_executables("/app")}
    if executable:
        assert found == set(names)
    else:
        assert found == set()
