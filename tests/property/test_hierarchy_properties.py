"""Property-based tests: the type hierarchy DAG invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.glare.hierarchy import TypeHierarchy
from repro.glare.model import ActivityType, InstallationSpec, TypeKind


@st.composite
def hierarchies(draw):
    """A random acyclic hierarchy: bases only among earlier types."""
    n = draw(st.integers(min_value=1, max_value=12))
    h = TypeHierarchy()
    names = [f"T{i}" for i in range(n)]
    for index, name in enumerate(names):
        base_pool = names[:index]
        bases = draw(st.lists(st.sampled_from(base_pool), max_size=3,
                              unique=True)) if base_pool else []
        concrete = draw(st.booleans())
        h.add(ActivityType(
            name=name,
            kind=TypeKind.CONCRETE if concrete else TypeKind.ABSTRACT,
            base_types=bases,
            installation=(
                InstallationSpec(deploy_file_url=f"http://x/{name}.build")
                if concrete else None
            ),
        ))
    return h


@given(hierarchies())
@settings(max_examples=150)
def test_ancestor_descendant_duality(h):
    for name in h.names():
        for ancestor in h.ancestors(name):
            if h.get(ancestor) is not None:
                assert name in h.descendants(ancestor)
        for descendant in h.descendants(name):
            assert name in h.ancestors(descendant)


@given(hierarchies())
@settings(max_examples=150)
def test_concrete_resolution_only_returns_concrete(h):
    for name in h.names():
        for at in h.concrete_types_for(name):
            assert at.kind == TypeKind.CONCRETE
            assert at.name == name or name in h.ancestors(at.name)


@given(hierarchies())
@settings(max_examples=150)
def test_no_self_ancestry(h):
    for name in h.names():
        assert name not in h.ancestors(name)
        assert name not in h.descendants(name)


@given(hierarchies())
@settings(max_examples=100)
def test_roots_have_no_known_bases(h):
    for root in h.roots():
        at = h.get(root)
        assert not any(base in h for base in at.base_types)


@given(hierarchies())
@settings(max_examples=100)
def test_remove_is_clean(h):
    names = h.names()
    if not names:
        return
    victim = names[len(names) // 2]
    h.remove(victim)
    assert victim not in h
    for name in h.names():
        assert victim not in h.descendants(name)
