"""Property-based tests: simulation-kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Resource, Simulator, Store

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=20,
)


@given(delays)
@settings(max_examples=100)
def test_events_fire_in_time_order(delay_list):
    sim = Simulator()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delay_list:
        sim.process(waiter(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)
    assert sim.now == max(delay_list)


@given(st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=100)
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    received = []

    def producer(store):
        for item in items:
            yield store.put(item)
            yield sim.timeout(0.1)

    def consumer(store):
        for _ in items:
            value = yield store.get()
            received.append(value)

    store = Store(sim)
    sim.process(producer(store))
    sim.process(consumer(store))
    sim.run()
    assert received == items


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
             min_size=1, max_size=25),
)
@settings(max_examples=60)
def test_resource_capacity_never_exceeded(capacity, durations):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    peak = [0]

    def worker(duration):
        request = resource.request()
        yield request
        peak[0] = max(peak[0], resource.count)
        yield sim.timeout(duration)
        resource.release(request)

    for duration in durations:
        sim.process(worker(duration))
    sim.run()
    assert peak[0] <= capacity
    assert resource.count == 0
    assert resource.queue_length == 0


@given(delays)
@settings(max_examples=80)
def test_allof_fires_at_max_anyof_at_min(delay_list):
    sim = Simulator()
    out = {}

    def waiter():
        events = [sim.timeout(d) for d in delay_list]
        yield sim.any_of(list(events))
        out["any"] = sim.now
        yield sim.all_of(list(events))
        out["all"] = sim.now

    sim.process(waiter())
    sim.run()
    assert abs(out["any"] - min(delay_list)) < 1e-9
    assert abs(out["all"] - max(delay_list)) < 1e-9


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=8))
@settings(max_examples=50)
def test_rng_streams_reproducible(seed, name):
    a = Simulator(seed=seed).rng.stream(name).random(5).tolist()
    b = Simulator(seed=seed).rng.stream(name).random(5).tolist()
    assert a == b


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=50)
def test_rng_streams_independent(seed):
    sim = Simulator(seed=seed)
    first = sim.rng.stream("alpha").random(3).tolist()
    other = sim.rng.stream("beta").random(3).tolist()
    again = Simulator(seed=seed)
    # drawing from beta first must not change alpha's stream
    again.rng.stream("beta").random(3)
    assert again.rng.stream("alpha").random(3).tolist() == first
