"""Orchestration must be invisible until opted into.

Two layers of guarantee:

* **scenario-pair identity** — a VO built with an inert
  ``OrchestrationConfig()`` (no specs) runs the exact same seeded
  workload to the exact same address-normalized kernel trace, message
  totals and clock as a VO built with ``orchestration=None``;
* **fingerprint gates** — with the config absent (every experiment's
  default), all committed determinism fingerprints — kernel,
  resolution, provisioning, faults, storage, workload — stay
  byte-identical to their ``BENCH_*.json`` baselines.
"""

import hashlib
import json
import re
from pathlib import Path

import pytest

from repro import perf
from repro.orchestrate.spec import DeploymentSpec, OrchestrationConfig

REPO_ROOT = Path(__file__).resolve().parents[2]

_ADDR = re.compile(r"0x[0-9a-f]+")


def _run_pair_workload(orchestration):
    """Build a small VO and drive a fixed resolve/install workload."""
    from repro.apps import get_application, publish_applications
    from repro.stats import collect_metrics
    from repro.vo import VOConfig, build_vo

    vo = build_vo(VOConfig(seed=7, n_sites=4, monitors=False,
                           lifecycle=True, orchestration=orchestration))
    vo.sim.trace = True
    publish_applications(vo, ["Wien2k"])
    vo.form_overlay()
    spec = get_application("Wien2k")
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": spec.type_xml}))
    for site in ("agrid02", "agrid03", "agrid02"):
        vo.run_process(vo.client_call(site, "get_deployments",
                                      payload="Wien2k"))
    vo.sim.run(until=vo.sim.now + 30.0)
    normalized = "\n".join(
        f"{when:.9f} {_ADDR.sub('0x0', label)}" for when, label in vo.sim.trace_log
    )
    snapshot = collect_metrics(vo)
    return {
        "trace_sha": hashlib.sha256(normalized.encode()).hexdigest(),
        "events": len(vo.sim.trace_log),
        "final_time": repr(vo.sim.now),
        "messages": snapshot.total_messages,
        "bytes": snapshot.total_bytes,
        "reconciler_absent": vo.reconciler is None,
    }


class TestInertConfigIsInvisible:
    def test_default_vo_config_has_no_orchestration(self):
        from repro.vo import VOConfig

        assert VOConfig().orchestration is None

    def test_default_orchestration_config_is_inert(self):
        assert OrchestrationConfig().any_enabled is False
        assert OrchestrationConfig(
            specs=(DeploymentSpec(type_name="X"),)
        ).any_enabled is True

    def test_inert_config_traces_byte_identical_to_none(self):
        baseline = _run_pair_workload(None)
        inert = _run_pair_workload(OrchestrationConfig())
        assert baseline["reconciler_absent"]
        assert inert["reconciler_absent"]
        assert inert == baseline

    def test_enabled_config_builds_a_reconciler(self):
        from repro.vo import VOConfig, build_vo

        cfg = OrchestrationConfig(
            specs=(DeploymentSpec(type_name="Wien2k", avoid_sites=("agrid00",)),),
            interval=5.0,
        )
        vo = build_vo(VOConfig(seed=7, n_sites=4, monitors=False,
                               lifecycle=True, orchestration=cfg))
        assert vo.reconciler is not None
        assert vo.reconciler.managed_types == ["Wien2k"]


#: suites whose committed baselines pin a determinism fingerprint
SUITES = ("resolution", "provisioning", "faults", "storage", "workload")


@pytest.mark.parametrize("suite", SUITES)
def test_fingerprints_match_committed_baselines(suite):
    with (REPO_ROOT / f"BENCH_{suite}.json").open() as handle:
        expected = json.load(handle)["fingerprint"]
    current = getattr(perf, f"{suite}_fingerprint")()
    assert set(current) == set(expected)
    for key in sorted(expected):
        assert current[key] == expected[key], f"{suite}: drift in {key}"
