"""Property-based tests: super-peer election invariants at any scale."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vo import build_vo


@given(
    n_sites=st.integers(min_value=1, max_value=12),
    group_size=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_election_invariants(n_sites, group_size, seed):
    vo = build_vo(n_sites=n_sites, seed=seed, group_size=group_size,
                  monitors=False)
    groups = vo.form_overlay()

    # every site is assigned to exactly one group
    assigned = [m for members in groups.values() for m in members]
    assert sorted(assigned) == sorted(vo.site_names)

    import math

    # the coordinator creates ceil(n / group_size) groups
    expected_groups = max(1, math.ceil(n_sites / group_size))
    assert len(groups) == expected_groups

    # exactly one super-peer per group, and it is in its own group
    for super_peer, members in groups.items():
        assert super_peer in members
        roles = [vo.rdm(m).overlay.view.role for m in members]
        assert roles.count("super-peer") == 1

    # the elected super-peers are precisely the top-ranked sites
    ranks = {name: vo.stack(name).site.rank() for name in vo.site_names}
    top = set(sorted(ranks, key=ranks.get, reverse=True)[:expected_groups])
    assert set(groups) == top

    # group sizes are balanced within one member
    sizes = [len(members) for members in groups.values()]
    assert max(sizes) - min(sizes) <= 1

    # every member agrees on the full super-peer list
    for name in vo.site_names:
        view = vo.rdm(name).overlay.view
        assert set(view.super_peers) == set(groups)


@given(
    n_sites=st.integers(min_value=3, max_value=9),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=10, deadline=None)
def test_single_super_peer_crash_recovers(n_sites, seed):
    """After any one super-peer crash, its survivors converge on a new
    super-peer who is the highest-ranked survivor."""
    vo = build_vo(n_sites=n_sites, seed=seed, group_size=3, monitors=False)
    groups = vo.form_overlay()
    candidates = [(sp, members) for sp, members in groups.items()
                  if len(members) >= 2]
    if not candidates:
        return  # all singleton groups: nothing to recover
    victim, members = candidates[0]
    survivors = [m for m in members if m != victim]
    vo.stack(victim).site.fail()
    vo.sim.run(until=vo.sim.now + 200)

    new_sps = {vo.rdm(m).overlay.view.super_peer for m in survivors}
    assert len(new_sps) == 1
    new_sp = new_sps.pop()
    assert new_sp in survivors
    ranks = {m: vo.stack(m).site.rank() for m in survivors}
    assert new_sp == max(ranks, key=ranks.get)
