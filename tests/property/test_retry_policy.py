"""Property tests for the shared retry policy and RemoteError wrapping.

The retry engine is on the hot path of every resilient RPC, so its
backoff arithmetic must be boringly predictable: deterministic for a
given seed, monotone in the attempt number (up to the cap), and never
allowed to burn more than the declared deadline budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.interceptors import Overloaded, RemoteError, RetryPolicy, RpcTimeout
from repro.simkernel.errors import OfflineError
from repro.simkernel.rng import RngRegistry


policies = st.builds(
    RetryPolicy,
    attempts=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=0.0, max_value=30.0,
                         allow_nan=False, allow_infinity=False),
    multiplier=st.floats(min_value=1.0, max_value=4.0,
                         allow_nan=False, allow_infinity=False),
    backoff=st.sampled_from(["exponential", "linear"]),
    max_delay=st.floats(min_value=0.1, max_value=120.0,
                        allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False),
    deadline=st.one_of(
        st.none(),
        st.floats(min_value=0.1, max_value=300.0,
                  allow_nan=False, allow_infinity=False),
    ),
)


class TestBackoffProperties:
    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=150)
    def test_schedule_deterministic_per_seed(self, policy, seed):
        first = policy.schedule(rng=RngRegistry(seed=seed))
        again = policy.schedule(rng=RngRegistry(seed=seed))
        assert first == again

    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=150)
    def test_schedule_never_exceeds_deadline(self, policy, seed):
        delays = policy.schedule(rng=RngRegistry(seed=seed))
        assert len(delays) <= policy.attempts - 1
        if policy.deadline is not None:
            assert sum(delays) <= policy.deadline

    @given(policy=policies, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=150)
    def test_delays_nonnegative_and_capped(self, policy, seed):
        rng = RngRegistry(seed=seed)
        for attempt in range(1, policy.attempts + 1):
            delay = policy.backoff_delay(attempt, rng=rng)
            assert delay >= 0.0
            # jitter is a fraction of the (already capped) base value
            assert delay <= policy.max_delay * (1.0 + policy.jitter)

    @given(policy=policies)
    @settings(max_examples=100)
    def test_unjittered_delay_monotone_until_cap(self, policy):
        previous = 0.0
        for attempt in range(1, policy.attempts + 1):
            delay = policy.backoff_delay(attempt, rng=None)
            assert delay >= previous or delay == policy.max_delay
            previous = delay


class TestRetryableClassification:
    @given(attempts=st.integers(min_value=2, max_value=8))
    def test_transport_errors_always_retryable(self, attempts):
        policy = RetryPolicy(attempts=attempts)
        for error in (OfflineError("x"), RpcTimeout("x"), Overloaded("x")):
            assert policy.retryable(error)

    @given(attempts=st.integers(min_value=2, max_value=8))
    def test_plain_exceptions_not_retryable(self, attempts):
        policy = RetryPolicy(attempts=attempts)
        assert not policy.retryable(ValueError("x"))
        assert not policy.retryable(RuntimeError("x"))


class TestRemoteErrorProperties:
    @given(name=st.sampled_from(
        ["ValueError", "KeyError", "XmlParseError", "IndexMeltdown"]),
        text=st.text(min_size=0, max_size=40))
    def test_error_type_preserves_original_name(self, name, text):
        cause = type(name, (Exception,), {})(text)
        error = RemoteError(cause)
        assert error.error_type == name
        assert not error.transient

    @given(text=st.text(min_size=0, max_size=40))
    def test_transient_cause_makes_wrapper_transient(self, text):
        # ``transient`` is carried as an attribute on the cause
        # (transport errors are classified via TRANSIENT_ERRORS instead)
        assert RemoteError(Overloaded(text)).transient
        assert not RemoteError(ValueError(text)).transient
