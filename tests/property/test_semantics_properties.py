"""Property-based tests: the semantic matcher's guarantees."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.glare.hierarchy import TypeHierarchy
from repro.glare.model import (
    ActivityFunction,
    ActivityType,
    InstallationSpec,
    TypeKind,
)
from repro.glare.semantics import SemanticIndex, SemanticQuery, SynonymTable

words = st.sampled_from(
    ["render", "convert", "display", "calibrate", "run", "scene", "image",
     "data", "result", "mesh", "field"]
)


@st.composite
def populated_indexes(draw):
    h = TypeHierarchy()
    n = draw(st.integers(min_value=1, max_value=10))
    for index in range(n):
        concrete = draw(st.booleans())
        functions = [
            ActivityFunction(
                name=draw(words),
                inputs=draw(st.lists(words, max_size=2)),
                outputs=draw(st.lists(words, max_size=2)),
            )
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        ]
        h.add(ActivityType(
            name=f"T{index}",
            kind=TypeKind.CONCRETE if concrete else TypeKind.ABSTRACT,
            domain=draw(words),
            functions=functions,
            installation=(
                InstallationSpec(deploy_file_url=f"http://x/{index}.build")
                if concrete and draw(st.booleans()) else None
            ),
        ))
    return SemanticIndex(h)


@st.composite
def queries(draw):
    return SemanticQuery(
        function=draw(st.one_of(st.just(""), words)),
        inputs=draw(st.lists(words, max_size=2)),
        outputs=draw(st.lists(words, max_size=1)),
        domain=draw(st.one_of(st.just(""), words)),
    )


@given(populated_indexes(), queries())
@settings(max_examples=150)
def test_results_sorted_and_concrete(index, query):
    matches = index.search(query)
    scores = [m.score for m in matches]
    assert scores == sorted(scores, reverse=True)
    for match in matches:
        at = index.hierarchy.get(match.type_name)
        assert at is not None and at.is_concrete


@given(populated_indexes(), queries())
@settings(max_examples=150)
def test_function_requirement_is_mandatory(index, query):
    if not query.function:
        return
    synonyms = index.synonyms
    for match in index.search(query):
        at = index.hierarchy.get(match.type_name)
        available = {f.name for f in index._functions_of(at)}
        assert any(synonyms.same(query.function, name) for name in available)


@given(populated_indexes(), queries())
@settings(max_examples=100)
def test_search_is_deterministic(index, query):
    first = [(m.type_name, m.score) for m in index.search(query)]
    second = [(m.type_name, m.score) for m in index.search(query)]
    assert first == second


@given(st.lists(st.sets(words, min_size=2, max_size=4), max_size=3))
@settings(max_examples=100)
def test_synonym_same_is_symmetric_and_reflexive(rings):
    table = SynonymTable(rings=rings)
    vocabulary = {w for ring in rings for w in ring} | {"unrelated"}
    for a in vocabulary:
        assert table.same(a, a)
        for b in vocabulary:
            assert table.same(a, b) == table.same(b, a)
