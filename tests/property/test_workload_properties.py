"""Property tests for the open-loop workload plane.

The ISSUE's contracts, pinned over generated inputs instead of a few
fixed seeds: the same seed must always reproduce the same arrival
trace; a thinned non-homogeneous trace can never exceed its envelope
candidates (acceptance is a subset by construction); cohort injection
must fire the exact ``(time, index)`` sequence of naive per-arrival
scheduling; and the streaming digests must be invariant under any
shard split and merge order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.arrivals import (
    DiurnalRate,
    MMPPProcess,
    NHPoissonProcess,
    ParetoSessions,
    PoissonProcess,
    StepRate,
)
from repro.load.inject import CohortInjector, NaiveInjector, quantize_ticks
from repro.load.stats import CommutativeDigest, LatencyDigest, StreamStats
from repro.simkernel import Simulator

seeds = st.integers(min_value=0, max_value=2**31)
rates = st.floats(min_value=1.0, max_value=2_000.0,
                  allow_nan=False, allow_infinity=False)
horizons = st.floats(min_value=0.5, max_value=30.0,
                     allow_nan=False, allow_infinity=False)
#: dyadic ticks are exactly representable, so quantised cohort times
#: are identical floats however they are computed
dyadic_ticks = st.sampled_from([2.0**-k for k in range(3, 10)])


def _model(kind: str, rate: float, horizon: float):
    if kind == "poisson":
        return PoissonProcess(rate)
    if kind == "diurnal":
        return NHPoissonProcess(
            DiurnalRate(rate, amplitude=0.7, period=max(horizon, 1.0),
                        regions=((0.0, 0.5), (horizon / 3.0, 0.5))))
    if kind == "step":
        return NHPoissonProcess(
            StepRate(rate, 4.0 * rate, horizon * 0.3, horizon * 0.6),
            name="nhpp-step")
    if kind == "mmpp":
        return MMPPProcess(rates=(rate, 5.0 * rate),
                           sojourns=(horizon / 4.0, horizon / 8.0))
    return ParetoSessions(PoissonProcess(rate / 10.0, name="session-starts"),
                          max_requests=100)


model_kinds = st.sampled_from(["poisson", "diurnal", "step", "mmpp", "sessions"])


class TestArrivalProperties:
    @given(kind=model_kinds, rate=rates, horizon=horizons, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_same_seed_identical_trace(self, kind, rate, horizon, seed):
        model = _model(kind, rate, horizon)
        assert np.array_equal(model.sample(horizon, seed),
                              model.sample(horizon, seed))

    @given(kind=model_kinds, rate=rates, horizon=horizons, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_sorted_and_bounded(self, kind, rate, horizon, seed):
        times = _model(kind, rate, horizon).sample(horizon, seed)
        assert np.all(np.diff(times) >= 0.0)
        if times.size:
            assert times[0] >= 0.0 and times[-1] < horizon

    @given(rate=rates, horizon=horizons, seed=seeds,
           amplitude=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_thinning_never_exceeds_envelope(self, rate, horizon, seed,
                                             amplitude):
        model = NHPoissonProcess(
            DiurnalRate(rate, amplitude=amplitude, period=max(horizon, 1.0)))
        accepted, candidates = model.sample_with_candidates(horizon, seed)
        assert accepted.size <= candidates.size
        # acceptance is a strict subset of the envelope-rate candidates
        assert np.all(np.isin(accepted, candidates))


class TestCohortProperties:
    @given(rate=st.floats(min_value=5.0, max_value=400.0),
           horizon=st.floats(min_value=0.5, max_value=8.0),
           tick=dyadic_ticks, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_cohort_equals_naive_fire_sequence(self, rate, horizon, tick, seed):
        times = PoissonProcess(rate).sample(horizon, seed)
        sequences = []
        for cls in (CohortInjector, NaiveInjector):
            sim = Simulator(seed=1)
            fired = []
            injector = cls(sim, times, lambda t, i: fired.append((t, i)),
                           tick=tick)
            injector.start()
            sim.run()
            assert injector.fired == times.size
            sequences.append(fired)
        assert sequences[0] == sequences[1]

    @given(rate=st.floats(min_value=5.0, max_value=2_000.0),
           horizon=st.floats(min_value=0.5, max_value=10.0),
           tick=dyadic_ticks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_quantisation_delays_never_advances(self, rate, horizon, tick, seed):
        times = PoissonProcess(rate).sample(horizon, seed)
        ticks = quantize_ticks(times, tick)
        quantised = ticks * tick
        assert np.all(quantised >= times)
        assert np.all(quantised - times < tick + 1e-12)


class TestDigestProperties:
    @given(values=st.lists(st.floats(min_value=1e-6, max_value=100.0,
                                     allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=200),
           cut=st.integers(min_value=0, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_latency_merge_is_split_invariant(self, values, cut):
        cut = min(cut, len(values))
        whole = LatencyDigest()
        for value in values:
            whole.observe(value)
        left, right = LatencyDigest(), LatencyDigest()
        for value in values[:cut]:
            left.observe(value)
        for value in values[cut:]:
            right.observe(value)
        right.merge(left)  # and in the "wrong" direction
        assert right.fingerprint() == whole.fingerprint()

    @given(records=st.lists(st.text(max_size=30), max_size=150),
           permutation_seed=seeds)
    @settings(max_examples=80, deadline=None)
    def test_commutative_digest_order_invariant(self, records, permutation_seed):
        rng = np.random.default_rng(permutation_seed)
        shuffled = [records[i] for i in rng.permutation(len(records))]
        a, b = CommutativeDigest(), CommutativeDigest()
        a.fold_many(records)
        b.fold_many(shuffled)
        assert a.hexdigest() == b.hexdigest()

    @given(events=st.lists(
        st.tuples(st.sampled_from(["resolve", "provision", "enact"]),
                  st.sampled_from(["ok", "shed", "timeout", "fail"]),
                  st.floats(min_value=0.0, max_value=60.0,
                            allow_nan=False, allow_infinity=False),
                  st.floats(min_value=1e-6, max_value=10.0,
                            allow_nan=False, allow_infinity=False)),
        max_size=120),
        n_shards=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_stream_stats_shard_invariant(self, events, n_shards):
        def record(stats, op, outcome, t, latency):
            if outcome == "ok":
                stats.ok(op, latency, t)
            elif outcome == "shed":
                stats.shed(op, t)
            elif outcome == "timeout":
                stats.timeout(op, t)
            else:
                stats.fail(op, t)
            stats.digest.fold(f"{op}|{outcome}|{t!r}")

        whole = StreamStats(window=5.0)
        for event in events:
            record(whole, *event)

        shards = [StreamStats(window=5.0) for _ in range(n_shards)]
        for index, event in enumerate(events):
            record(shards[index % n_shards], *event)
        merged = shards[-1]  # merge into the *last* shard, reversed order
        for shard in reversed(shards[:-1]):
            merged.merge(shard)
        assert merged.fingerprint() == whole.fingerprint()
