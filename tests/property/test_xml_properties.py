"""Property-based tests: XML infoset roundtrips and escaping."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wsrf.xmldoc import Element, escape_text, parse_xml, unescape_text

tag_names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=10)
attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'/.:-_",
    max_size=30,
)
# element text: printable, no raw control chars; strip() applied by parser
texts = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'.,:-_",
    max_size=40,
)


@st.composite
def elements(draw, depth=0):
    tag = draw(tag_names)
    attrib = draw(
        st.dictionaries(tag_names, attr_values, max_size=3)
    )
    element = Element(tag, attrib=attrib, text=draw(texts).strip())
    if depth < 3:
        children = draw(st.lists(elements(depth=depth + 1), max_size=3))
        for child in children:
            element.append(child)
        if children:
            # mixed content is not round-trip safe in our serializer;
            # elements with children carry no text
            element.text = ""
    return element


@given(elements())
@settings(max_examples=150)
def test_serialize_parse_roundtrip(element):
    parsed = parse_xml(element.to_string())
    assert parsed.equals(element)


@given(texts)
def test_escape_unescape_inverse(text):
    assert unescape_text(escape_text(text)) == text


@given(elements())
def test_deep_copy_equals_original(element):
    assert element.deep_copy().equals(element)


@given(elements())
def test_iter_count_consistent(element):
    assert element.count_nodes() == sum(1 for _ in element.iter())
    assert element.count_nodes() == 1 + sum(
        c.count_nodes() for c in element.children
    )


@given(elements())
def test_parent_links_consistent(element):
    for node in element.iter():
        for child in node.children:
            assert child.parent is node
