"""Property-based tests for the XPath-subset engine."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wsrf.xmldoc import Element
from repro.wsrf.xpath import XPathQuery

tags = st.sampled_from(["Entry", "Type", "Deployment", "Meta", "Item"])
names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def documents(draw, depth=0):
    element = Element(draw(tags))
    if draw(st.booleans()):
        element.attrib["name"] = draw(names)
    if depth < 3:
        for child in draw(st.lists(documents(depth=depth + 1), max_size=4)):
            element.append(child)
    return element


@given(documents(), tags)
@settings(max_examples=200)
def test_descendant_query_matches_iteration(doc, tag):
    """``//Tag`` finds exactly the elements a full walk finds."""
    results, visits = XPathQuery.compile(f"//{tag}").evaluate(doc)
    expected = [e for e in doc.iter() if e.tag == tag]
    assert results == expected
    assert visits >= doc.count_nodes()


@given(documents(), tags, names)
@settings(max_examples=200)
def test_attribute_predicate_soundness(doc, tag, name):
    """Every match of ``//Tag[@name='x']`` really has that attribute."""
    query = XPathQuery.compile(f"//{tag}[@name='{name}']")
    results, _ = query.evaluate(doc)
    for element in results:
        assert element.tag == tag
        assert element.attrib.get("name") == name
    # completeness: nothing with the attribute was missed
    expected = [
        e for e in doc.iter()
        if e.tag == tag and e.attrib.get("name") == name
    ]
    assert results == expected


@given(documents())
@settings(max_examples=100)
def test_wildcard_child_step(doc):
    results, _ = XPathQuery.compile("/*").evaluate(doc)
    assert results == [doc]
    results, _ = XPathQuery.compile(f"/{doc.tag}/*").evaluate(doc)
    assert results == doc.children


@given(st.lists(documents(), max_size=5), tags)
@settings(max_examples=100)
def test_forest_query_is_union_of_per_document_queries(forest, tag):
    query = XPathQuery.compile(f"//{tag}")
    combined, _ = query.evaluate(forest)
    separate = []
    for doc in forest:
        results, _ = query.evaluate(doc)
        separate.extend(results)
    assert combined == separate


@given(documents(), tags)
@settings(max_examples=100)
def test_evaluation_is_pure(doc, tag):
    """Evaluating twice gives identical results and visit counts."""
    query = XPathQuery.compile(f"//{tag}[@name]")
    first = query.evaluate(doc)
    second = query.evaluate(doc)
    assert first == second
