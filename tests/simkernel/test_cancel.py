"""Unit tests for ``Simulator.cancel`` — the shutdown primitive that
lets periodic components (lifetime sweeper, metrics recorder, the
orchestration reconciler) withdraw their pending interval tick."""

import math

from repro.simkernel import Simulator


class TestCancel:
    def test_cancel_removes_future_event(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(1.0)
            fired.append(sim.now)

        sim.process(proc())
        event = sim.timeout(5.0)
        assert sim.cancel(event) is True
        sim.run()
        assert fired == [1.0]
        assert sim.now == 1.0  # the 5.0 tick never held the clock

    def test_cancel_empties_agenda(self):
        sim = Simulator()
        event = sim.timeout(3.0)
        assert not math.isinf(sim.peek())
        assert sim.cancel(event) is True
        assert math.isinf(sim.peek())

    def test_cancel_unknown_event_returns_false(self):
        sim = Simulator()
        event = sim.timeout(3.0)
        assert sim.cancel(event) is True
        assert sim.cancel(event) is False  # already removed

    def test_cancel_dispatched_event_returns_false(self):
        sim = Simulator()
        event = sim.timeout(1.0)

        def proc():
            yield event

        sim.process(proc())
        sim.run()
        assert sim.cancel(event) is False

    def test_cancel_one_of_a_shared_bucket(self):
        # two events at the same timestamp share an agenda bucket;
        # cancelling one must leave the other live
        sim = Simulator()
        fired = []
        doomed = sim.timeout(2.0)

        def proc():
            yield sim.timeout(2.0)
            fired.append(sim.now)

        sim.process(proc())
        assert sim.cancel(doomed) is True
        sim.run()
        assert fired == [2.0]

    def test_cancelled_event_does_not_resume_waiter(self):
        from repro.simkernel.errors import Interrupt

        sim = Simulator()
        resumed = []
        event = sim.timeout(1.0)

        def waiter():
            try:
                yield event
                resumed.append(sim.now)
            except Interrupt:
                return

        proc = sim.process(waiter())
        sim.cancel(event)
        sim.run()
        assert resumed == []
        # the waiter is parked forever unless interrupted — exactly the
        # stop() idiom: cancel the tick, then interrupt the process
        proc.interrupt("stop")
        sim.run()
        assert math.isinf(sim.peek())
