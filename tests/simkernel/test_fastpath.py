"""Regression tests for the kernel fast path.

Covers the behaviours the wall-clock optimisation work must not bend:
``Event.trigger`` error reporting, lazy-cancellation (tombstone)
unsubscribe semantics, Timeout free-list recycling safety, and seeded
run-to-run determinism of the trace log.
"""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.errors import EventAlreadyFired, SimulationError
from repro.simkernel.events import Event, Timeout
from repro.simkernel.kernel import _POOL_LIMIT


class TestTrigger:
    def test_trigger_copies_success(self):
        sim = Simulator()
        src = Event(sim).succeed("payload")
        dst = Event(sim)
        dst.trigger(src)
        assert dst.triggered and dst.ok
        assert dst.value == "payload"

    def test_trigger_copies_failure(self):
        sim = Simulator()
        boom = RuntimeError("boom")
        src = Event(sim).fail(boom)
        src.defused = True
        dst = Event(sim)
        dst.trigger(src)
        dst.defused = True
        assert dst.triggered and not dst.ok
        assert dst.value is boom

    def test_trigger_from_untriggered_raises_simulation_error(self):
        # Regression: this used to die inside succeed()/fail() with a
        # confusing downstream error instead of naming the real mistake.
        sim = Simulator()
        src = Event(sim, name="src")
        dst = Event(sim, name="dst")
        with pytest.raises(SimulationError, match="untriggered"):
            dst.trigger(src)
        # dst must be untouched — still usable afterwards
        assert not dst.triggered
        dst.succeed(1)

    def test_trigger_onto_already_triggered_still_rejected(self):
        sim = Simulator()
        src = Event(sim).succeed(1)
        dst = Event(sim).succeed(2)
        with pytest.raises(EventAlreadyFired):
            dst.trigger(src)


class TestUnsubscribeTombstones:
    def test_unsubscribed_callback_not_called(self):
        sim = Simulator()
        event = Event(sim)
        calls = []
        event.subscribe(lambda e: calls.append("kept"))
        dropped = lambda e: calls.append("dropped")  # noqa: E731
        event.subscribe(dropped)
        event.unsubscribe(dropped)
        event.succeed()
        sim.run()
        assert calls == ["kept"]

    def test_unsubscribe_leaves_tombstone_not_shift(self):
        sim = Simulator()
        event = Event(sim)
        cb = lambda e: None  # noqa: E731
        event.subscribe(cb)
        event.unsubscribe(cb)
        # lazy cancellation: the slot is tombstoned, not removed
        assert event.callbacks == [None]

    def test_one_unsubscribe_cancels_one_registration(self):
        # Documented semantics: a callback subscribed twice keeps its
        # second registration until unsubscribed again.
        sim = Simulator()
        event = Event(sim)
        calls = []
        cb = lambda e: calls.append(1)  # noqa: E731
        event.subscribe(cb)
        event.subscribe(cb)
        event.unsubscribe(cb)
        event.succeed()
        sim.run()
        assert calls == [1]

    def test_unsubscribe_absent_callback_is_noop(self):
        sim = Simulator()
        event = Event(sim)
        event.unsubscribe(lambda e: None)  # must not raise
        assert event.callbacks == []

    def test_unsubscribe_after_processed_is_noop(self):
        sim = Simulator()
        event = Event(sim).succeed()
        sim.run()
        assert event.processed
        event.unsubscribe(lambda e: None)  # callbacks is None now

    def test_interrupt_mid_wait_skips_other_waiters_correctly(self):
        # An interrupt unsubscribes the victim from its wait target;
        # other processes waiting on the same event must still resume.
        sim = Simulator()
        gate = Event(sim)
        log = []

        def victim():
            try:
                yield gate
                log.append("victim-resumed")
            except Exception as exc:
                log.append(f"victim-interrupted:{exc.cause}")

        def bystander():
            yield gate
            log.append("bystander-resumed")

        target = sim.process(victim())
        sim.process(bystander())

        def attacker():
            yield sim.timeout(1.0)
            target.interrupt("now")
            yield sim.timeout(1.0)
            gate.succeed()

        sim.process(attacker())
        sim.run()
        assert "victim-interrupted:now" in log
        assert "bystander-resumed" in log
        assert "victim-resumed" not in log


class TestTimeoutPooling:
    def test_recycled_timeouts_do_not_leak_values(self):
        # Drive enough churn that pooled Timeout objects get reused,
        # and check every delivered value is the one yielded.
        sim = Simulator()
        seen = []

        def proc(tag):
            for i in range(200):
                got = yield sim.timeout(0.01, value=(tag, i))
                seen.append(got)

        for tag in range(4):
            sim.process(proc(tag), name=f"p{tag}")
        sim.run()
        assert len(seen) == 800
        for tag in range(4):
            assert [v for v in seen if v[0] == tag] == [(tag, i) for i in range(200)]

    def test_referenced_timeout_is_not_recycled(self):
        sim = Simulator()
        held = []

        def holder():
            t = sim.timeout(0.5, value="mine")
            held.append(t)
            yield t
            # churn more timeouts; the held one must keep its state
            for _ in range(50):
                yield sim.timeout(0.1)

        sim.process(holder())
        sim.run()
        (t,) = held
        assert t.processed
        assert t.value == "mine"

    def test_pool_is_bounded(self):
        sim = Simulator()

        def churn():
            for _ in range(3 * _POOL_LIMIT):
                yield sim.timeout(0.001)

        sim.process(churn())
        sim.run()
        assert len(sim._timeout_pool) <= _POOL_LIMIT

    def test_negative_delay_rejected_even_with_pool(self):
        sim = Simulator()

        def churn():
            for _ in range(10):
                yield sim.timeout(0.001)

        sim.process(churn())
        sim.run()
        assert sim._timeout_pool  # recycled instances available
        with pytest.raises(ValueError, match="negative"):
            sim.timeout(-1.0)

    def test_pooled_timeout_type_and_fresh_state(self):
        sim = Simulator()

        def churn():
            # several timeouts: a process's *final* wait target stays
            # referenced by the process and is deliberately not pooled
            for _ in range(5):
                yield sim.timeout(0.1, value="old")

        sim.process(churn())
        sim.run()
        assert sim._timeout_pool
        t = sim.timeout(0.2, value="new")
        assert type(t) is Timeout
        assert not t.processed
        assert t.callbacks == []
        assert t.delay == 0.2
        assert t._value == "new"
        assert not t.defused


class TestSeededDeterminism:
    def _trace(self, seed):
        from repro.perf import _mixed_kernel_scenario

        sim = _mixed_kernel_scenario(seed)
        return sim.now, list(sim.trace_log)

    def test_same_seed_identical_trace(self):
        from repro.perf import kernel_trace_fingerprint

        first = kernel_trace_fingerprint(seed=5)
        second = kernel_trace_fingerprint(seed=5)
        assert first == second
        # and the raw (time, label) pairs agree apart from object ids
        now_a, trace_a = self._trace(9)
        now_b, trace_b = self._trace(9)
        assert now_a == now_b
        assert [t for t, _ in trace_a] == [t for t, _ in trace_b]
        assert len(trace_a) == len(trace_b)

    def test_traced_and_untraced_runs_agree_on_time(self):
        def workload(sim):
            def proc():
                for i in range(100):
                    yield sim.timeout(0.013 * (1 + i % 3))

            sim.process(proc())
            sim.run()
            return sim.now

        assert workload(Simulator(seed=2)) == workload(Simulator(seed=2, trace=True))
