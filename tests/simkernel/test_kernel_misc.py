"""Kernel odds and ends: trace, peek/step, run(until) semantics."""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.errors import Interrupt, SimulationError, StopProcess
from repro.simkernel.kernel import EmptySchedule


class TestRunSemantics:
    def test_run_until_time_stops_exactly(self):
        sim = Simulator()
        fired = []

        def waiter():
            yield sim.timeout(5)
            fired.append("early")
            yield sim.timeout(10)
            fired.append("late")

        sim.process(waiter())
        sim.run(until=7.0)
        assert fired == ["early"]
        assert sim.now == 7.0
        sim.run(until=20.0)
        assert fired == ["early", "late"]

    def test_run_until_past_time_rejected(self):
        sim = Simulator()
        sim.run(until=10)
        with pytest.raises(ValueError):
            sim.run(until=5)

    def test_run_until_event_already_processed(self):
        sim = Simulator()
        event = sim.timeout(1, value="x")
        sim.run()
        assert sim.run(until=event) == "x"

    def test_peek_and_step(self):
        sim = Simulator()
        sim.timeout(3)
        sim.timeout(1)
        assert sim.peek() == 1.0
        sim.step()
        assert sim.now == 1.0
        assert sim.peek() == 3.0
        sim.step()
        with pytest.raises(EmptySchedule):
            sim.step()
        assert sim.peek() == float("inf")

    def test_trace_log_records_events(self):
        sim = Simulator(trace=True)

        def proc():
            yield sim.timeout(2)

        sim.process(proc())
        sim.run()
        assert sim.trace_log
        times = [t for t, _ in sim.trace_log]
        assert times == sorted(times)

    def test_trace_limit_keeps_most_recent_entries(self):
        sim = Simulator(trace=True, trace_limit=5)

        def ticker():
            for _ in range(20):
                yield sim.timeout(1)

        sim.process(ticker())
        sim.run()
        assert len(sim.trace_log) == 5
        times = [t for t, _ in sim.trace_log]
        assert times == sorted(times)
        # the ring keeps the newest entries, so the last dispatch is there
        assert times[-1] == sim.now

    def test_trace_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Simulator(trace=True, trace_limit=0)

    def test_unlimited_trace_log_is_plain_list(self):
        sim = Simulator(trace=True)
        assert isinstance(sim.trace_log, list)

    def test_stop_process_exception(self):
        sim = Simulator()

        def deep():
            yield sim.timeout(1)
            raise StopProcess("early-value")

        proc = sim.process(deep())
        assert sim.run(until=proc) == "early-value"


class TestInterruptEdges:
    def test_interrupt_dead_process_rejected(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError, match="dead process"):
            proc.interrupt()

    def test_self_interrupt_rejected(self):
        sim = Simulator()
        caught = []

        def selfish():
            me = sim.active_process
            try:
                me.interrupt("myself")
            except SimulationError as error:
                caught.append(str(error))
            yield sim.timeout(1)

        sim.process(selfish())
        sim.run()
        assert caught and "cannot interrupt itself" in caught[0]

    def test_interrupt_detaches_from_wait_target(self):
        """After an interrupt, the old wait target firing is harmless."""
        sim = Simulator()
        states = []

        def victim():
            try:
                yield sim.timeout(10)
                states.append("finished-wait")
            except Interrupt:
                states.append("interrupted")
                yield sim.timeout(100)
                states.append("resumed")

        proc = sim.process(victim())

        def attacker():
            yield sim.timeout(1)
            proc.interrupt()

        sim.process(attacker())
        sim.run()
        # the original timeout at t=10 did not wake the victim again
        assert states == ["interrupted", "resumed"]

    def test_interrupt_cause_carried(self):
        sim = Simulator()
        causes = []

        def victim():
            try:
                yield sim.timeout(50)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)

        proc = sim.process(victim())

        def attacker():
            yield sim.timeout(1)
            proc.interrupt({"reason": "test"})

        sim.process(attacker())
        sim.run()
        assert causes == [{"reason": "test"}]
