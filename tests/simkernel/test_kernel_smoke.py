"""Smoke tests for the simulation kernel core loop."""

import pytest

from repro.simkernel import (
    CPU,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    LoadAverage,
    Resource,
    Simulator,
    Store,
)
from repro.simkernel.kernel import SimulationError


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(3.0)
        log.append(sim.now)
        yield sim.timeout(2.0)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [3.0, 5.0]


def test_process_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        return 42

    def parent():
        value = yield sim.process(child())
        return value * 2

    p = sim.process(parent())
    assert sim.run(until=p) == 84


def test_event_fail_propagates():
    sim = Simulator()

    def proc():
        ev = sim.event()
        ev.fail(ValueError("boom"))
        yield ev

    p = sim.process(proc())
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=p)


def test_interrupt():
    sim = Simulator()
    caught = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            caught.append((sim.now, i.cause))

    def attacker(v):
        yield sim.timeout(5)
        v.interrupt("die")

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert caught == [(5.0, "die")]


def test_all_of_any_of():
    sim = Simulator()
    results = {}

    def proc():
        t1, t2 = sim.timeout(1, "a"), sim.timeout(2, "b")
        got = yield sim.any_of([t1, t2])
        results["any_at"] = sim.now
        results["any_n"] = len(got)
        t3, t4 = sim.timeout(3, "c"), sim.timeout(1, "d")
        yield sim.all_of([t3, t4])
        results["all_at"] = sim.now

    sim.process(proc())
    sim.run()
    assert results["any_at"] == 1.0
    assert results["any_n"] == 1
    assert results["all_at"] == 4.0


def test_store_fifo_blocking():
    sim = Simulator()
    got = []

    def producer(store):
        for i in range(3):
            yield sim.timeout(1)
            yield store.put(i)

    def consumer(store):
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    store = Store(sim)
    sim.process(producer(store))
    sim.process(consumer(store))
    sim.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_resource_mutual_exclusion():
    sim = Simulator()
    active = []
    peak = []

    def worker(res):
        req = res.request()
        yield req
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(1)
        active.pop()
        res.release(req)

    res = Resource(sim, capacity=2)
    for _ in range(5):
        sim.process(worker(res))
    sim.run()
    assert max(peak) == 2
    assert sim.now == pytest.approx(3.0)


def test_cpu_and_loadavg():
    sim = Simulator()
    cpu = CPU(sim, cores=1)
    la = LoadAverage(sim, cpu, interval=5.0)
    la.start()

    def burst():
        yield from cpu.execute(30.0)

    for _ in range(4):
        sim.process(burst())
    sim.run(until=200)
    # Four 30-second jobs on one core keep the run queue at 4..1 for
    # two minutes: the 1-min load average must rise well above zero.
    assert la.peak() > 1.0
    assert cpu.jobs_completed == 4
    assert cpu.busy_time == pytest.approx(120.0)


def test_run_until_event_requires_events():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)
