"""Unit tests for stores, priority stores, containers, and events."""

import pytest

from repro.simkernel import Container, PriorityStore, Simulator, Store
from repro.simkernel.errors import EventAlreadyFired


class TestStoreCapacity:
    def test_put_blocks_when_full(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        timeline = []

        def producer():
            for index in range(4):
                yield store.put(index)
                timeline.append(("put", index, sim.now))

        def consumer():
            yield sim.timeout(10)
            for _ in range(4):
                item = yield store.get()
                timeline.append(("get", item, sim.now))
                yield sim.timeout(1)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        puts = [entry for entry in timeline if entry[0] == "put"]
        # first two puts immediate; the rest wait for consumption
        assert puts[0][2] == 0 and puts[1][2] == 0
        assert puts[2][2] >= 10
        gets = [entry[1] for entry in timeline if entry[0] == "get"]
        assert gets == [0, 1, 2, 3]

    def test_try_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.try_put("a") is True
        assert store.try_put("b") is False
        assert len(store) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Simulator(), capacity=0)


class TestPriorityStore:
    def test_get_returns_smallest(self):
        sim = Simulator()
        store = PriorityStore(sim)
        received = []

        def run():
            for value in (5, 1, 3):
                yield store.put(value)
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.process(run())
        sim.run()
        assert received == [1, 3, 5]

    def test_tuple_priorities(self):
        sim = Simulator()
        store = PriorityStore(sim)
        received = []

        def run():
            yield store.put((2, "low"))
            yield store.put((1, "high"))
            item = yield store.get()
            received.append(item)

        sim.process(run())
        sim.run()
        assert received == [(1, "high")]


class TestContainer:
    def test_put_get_levels(self):
        sim = Simulator()
        container = Container(sim, capacity=100, initial=50)
        log = []

        def consumer():
            yield container.get(30)
            log.append(("got", container.level, sim.now))
            yield container.get(40)  # blocks: only 20 left
            log.append(("got2", container.level, sim.now))

        def producer():
            yield sim.timeout(5)
            yield container.put(25)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert log[0] == ("got", 20, 0)
        assert log[1][2] == 5  # unblocked when producer delivered

    def test_overflow_blocks(self):
        sim = Simulator()
        container = Container(sim, capacity=10, initial=8)
        done = []

        def producer():
            yield container.put(5)  # would exceed capacity: blocks
            done.append(sim.now)

        def consumer():
            yield sim.timeout(3)
            yield container.get(4)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert done == [3]
        assert container.level == 9

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Container(sim, capacity=0)
        with pytest.raises(ValueError):
            Container(sim, capacity=5, initial=10)
        container = Container(sim, capacity=5)
        with pytest.raises(ValueError):
            container.put(-1)
        with pytest.raises(ValueError):
            container.get(-1)


class TestEventSemantics:
    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(EventAlreadyFired):
            event.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_crashes_simulation(self):
        sim = Simulator()
        sim.event().fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError, match="nobody caught me"):
            sim.run()

    def test_defused_failure_is_silent(self):
        sim = Simulator()
        event = sim.event()
        event.fail(RuntimeError("ignored"))
        event.defused = True
        sim.run()  # no raise

    def test_trigger_copies_outcome(self):
        sim = Simulator()
        source, target = sim.event(), sim.event()
        source.succeed("payload")
        target.trigger(source)
        sim.run()
        assert target.ok and target.value == "payload"

    def test_yield_non_event_kills_process(self):
        sim = Simulator()

        def bad():
            yield "not an event"

        proc = sim.process(bad())
        with pytest.raises(RuntimeError, match="non-event"):
            sim.run(until=proc)

    def test_timeout_value_passthrough(self):
        sim = Simulator()
        out = []

        def run():
            value = yield sim.timeout(1, value="tick")
            out.append(value)

        sim.process(run())
        sim.run()
        assert out == ["tick"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1)
