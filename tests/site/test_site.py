"""Unit tests for site descriptions, filesystems, and GridSite."""

import pytest

from repro.net import Network, Topology
from repro.simkernel import Simulator
from repro.site import Filesystem, FilesystemError, GridSite, SiteDescription


class TestSiteDescription:
    def test_rank_is_deterministic(self):
        d1 = SiteDescription(name="innsbruck", processor_speed_mhz=3000)
        d2 = SiteDescription(name="innsbruck", processor_speed_mhz=3000)
        assert d1.rank_hashcode() == d2.rank_hashcode()

    def test_rank_differs_between_sites(self):
        ranks = {
            SiteDescription(name=f"site{i}").rank_hashcode() for i in range(50)
        }
        assert len(ranks) == 50

    def test_rank_sensitive_to_static_attrs(self):
        base = SiteDescription(name="x", memory_mb=1024)
        more = SiteDescription(name="x", memory_mb=2048)
        assert base.rank_hashcode() != more.rank_hashcode()

    def test_constraints_satisfied(self):
        d = SiteDescription(name="s", platform="Intel", os="Linux", arch="32bit")
        assert d.satisfies({"platform": "Intel", "os": "linux"})
        assert not d.satisfies({"os": "Solaris"})
        assert not d.satisfies({"gpu": "yes"})

    def test_extra_constraints(self):
        d = SiteDescription(name="s", extra={"mpi": "openmpi"})
        assert d.satisfies({"mpi": "openmpi"})
        assert not d.satisfies({"mpi": "mpich"})

    def test_info_document(self):
        doc = SiteDescription(name="s1", processors=8).to_info_document()
        assert doc.get("name") == "s1"
        assert doc.findtext("Processors") == "8"

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteDescription(name="")
        with pytest.raises(ValueError):
            SiteDescription(name="x", processors=0)


class TestFilesystem:
    def test_mkdir_and_put(self):
        fs = Filesystem()
        fs.mkdir_p("/opt/app/bin")
        assert fs.is_dir("/opt/app/bin")
        fs.put_file("/opt/app/bin/run", size=100, executable=True)
        assert fs.exists("/opt/app/bin/run")
        assert fs.get_file("/opt/app/bin/run").executable

    def test_parents_created_implicitly(self):
        fs = Filesystem()
        fs.put_file("/a/b/c/file.txt", size=1)
        assert fs.is_dir("/a/b/c")

    def test_relative_path_rejected(self):
        fs = Filesystem()
        with pytest.raises(FilesystemError):
            fs.mkdir_p("relative/path")

    def test_path_normalization(self):
        fs = Filesystem()
        fs.put_file("/a//b/../c/./f", size=5)
        assert fs.exists("/a/c/f")

    def test_file_dir_collisions(self):
        fs = Filesystem()
        fs.mkdir_p("/d")
        with pytest.raises(FilesystemError):
            fs.put_file("/d", size=1)
        fs.put_file("/f", size=1)
        with pytest.raises(FilesystemError):
            fs.mkdir_p("/f")

    def test_listdir(self):
        fs = Filesystem()
        fs.put_file("/top/a", size=1)
        fs.put_file("/top/sub/b", size=1)
        assert fs.listdir("/top") == ["a", "sub"]

    def test_rmtree(self):
        fs = Filesystem()
        fs.put_file("/app/bin/x", size=1)
        fs.put_file("/app/lib/y", size=1)
        removed = fs.rmtree("/app")
        assert removed == 2
        assert not fs.exists("/app/bin/x")
        assert not fs.is_dir("/app")

    def test_find_executables_in_bin(self):
        fs = Filesystem()
        fs.put_file("/opt/povray/bin/povray", size=10, executable=True)
        fs.put_file("/opt/povray/bin/README", size=1, executable=False)
        fs.put_file("/opt/povray/lib/helper", size=1, executable=True)
        found = fs.find_executables("/opt/povray")
        assert [f.name for f in found] == ["povray"]

    def test_expand_archive(self):
        fs = Filesystem()
        fs.put_file("/tmp/app.tgz", size=1000)
        created = fs.expand_archive(
            "/tmp/app.tgz",
            "/opt/app",
            [("bin/run", 500, True), ("doc/readme", 10, False)],
        )
        assert len(created) == 2
        assert fs.get_file("/opt/app/bin/run").executable

    def test_expand_missing_archive_raises(self):
        fs = Filesystem()
        with pytest.raises(FilesystemError):
            fs.expand_archive("/tmp/nothing.tgz", "/opt/x", [])

    def test_disk_usage(self):
        fs = Filesystem()
        fs.put_file("/a", size=10)
        fs.put_file("/b", size=32)
        assert fs.disk_usage() == (2, 42)


class TestGridSite:
    def make_site(self, name="s1"):
        sim = Simulator()
        net = Network(sim, Topology())
        return GridSite(net, SiteDescription(name=name))

    def test_default_env_and_dirs(self):
        site = self.make_site()
        assert site.fs.is_dir(site.env["DEPLOYMENT_DIR"])
        assert site.fs.is_dir(site.env["GLOBUS_SCRATCH_DIR"])
        assert site.env["GLOBUS_LOCATION"] == "/opt/globus"

    def test_env_substitution(self):
        site = self.make_site()
        out = site.substitute_env("$DEPLOYMENT_DIR/povray")
        assert out == "/opt/deployments/povray"

    def test_env_substitution_with_extra(self):
        site = self.make_site()
        out = site.substitute_env(
            "$POVRAY_HOME/bin", extra={"POVRAY_HOME": "/opt/deployments/povray"}
        )
        assert out == "/opt/deployments/povray/bin"

    def test_fail_and_recover(self):
        site = self.make_site()
        assert site.online
        site.fail()
        assert not site.online
        site.recover()
        assert site.online

    def test_rank_matches_description(self):
        site = self.make_site()
        assert site.rank() == site.description.rank_hashcode()
