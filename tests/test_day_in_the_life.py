"""Capstone integration: a full day in the life of a GLARE VO.

Eight sites, all monitors running, several applications registered by
different providers, workflows running from different home sites, a
super-peer crash in the middle — and at the end the VO must be healthy
by the global invariant sweep.
"""

import pytest

from repro.apps import (
    publish_applications,
    register_application,
    register_base_hierarchy,
)
from repro.glare.model import ActivityDeployment
from repro.invariants import check_vo_invariants
from repro.vo import build_vo
from repro.workflow import Workflow
from repro.workflow.enactment import run_workflow


@pytest.mark.slow
def test_day_in_the_life():
    vo = build_vo(n_sites=8, seed=400, monitors=True, group_size=3)
    publish_applications(vo)
    groups = vo.form_overlay()
    assert len(groups) == 3

    # Providers on different sites register different applications.
    vo.run_process(register_base_hierarchy(vo, "agrid01"))
    vo.run_process(register_application(vo, "agrid01", "JPOVray"))
    vo.run_process(register_application(vo, "agrid02", "Java"))
    vo.run_process(register_application(vo, "agrid02", "Ant"))
    vo.run_process(register_application(vo, "agrid03", "Wien2k"))
    vo.run_process(register_application(vo, "agrid04", "ImageViewer"))

    # A client resolves Wien2k (cross-group discovery + auto-install).
    wires = vo.run_process(vo.client_call("agrid06", "get_deployments",
                                          payload="Wien2k"))
    assert wires
    wien2k_site = ActivityDeployment.from_xml(wires[0]["xml"]).site

    # The Fig. 1 workflow runs from yet another site, pulling in
    # JPOVray + Java + Ant + ImageViewer on demand.
    wf = Workflow.povray_example()
    result, schedule = vo.run_process(run_workflow(vo, wf, "agrid07"))
    assert result.success, result.error

    # Mid-day disaster: one super-peer dies.
    victim = next(sp for sp, members in groups.items() if len(members) >= 3)
    survivors = [m for m in groups[victim] if m != victim]
    vo.stack(victim).site.fail()
    vo.sim.run(until=vo.sim.now + 180)  # detection + re-election + refresh

    # The surviving group re-elected and keeps serving.
    new_sp = vo.rdm(survivors[0]).overlay.view.super_peer
    assert new_sp != victim

    # Another workflow still completes (possibly remapping around the
    # dead site).
    wf2 = Workflow("evening")
    from repro.workflow import ActivityNode

    wf2.add(ActivityNode("render", "ImageConversion", demand=3.0))
    result2, _ = vo.run_process(run_workflow(vo, wf2, survivors[0]))
    assert result2.success, result2.error

    # Let the monitors settle, then sweep the global invariants.
    vo.sim.run(until=vo.sim.now + 120)
    violations = check_vo_invariants(vo)
    assert violations == []

    # Sanity: instantiation still works against the earlier install.
    if vo.stack(wien2k_site).site.online:
        deployment = ActivityDeployment.from_xml(wires[0]["xml"])
        outcome = vo.run_process(vo.network.call(
            "agrid06", wien2k_site, "glare-rdm", "instantiate",
            payload={"key": deployment.key, "demand": 1.0},
        ))
        assert outcome["exit_code"] == 0


def test_invariants_detect_corruption():
    """The checker actually catches planted inconsistencies."""
    vo = build_vo(n_sites=3, seed=401, monitors=False)
    vo.form_overlay()
    type_xml = ('<ActivityTypeEntry name="Inv" kind="concrete">'
                "<Domain>x</Domain></ActivityTypeEntry>")
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": type_xml}))
    from repro.glare.model import DeploymentKind, DeploymentStatus

    deployment = ActivityDeployment(
        name="inv", type_name="Inv", kind=DeploymentKind.EXECUTABLE,
        site="agrid01", path="/opt/deployments/inv/bin/inv",
        status=DeploymentStatus.ACTIVE,
    )
    vo.stack("agrid01").site.fs.put_file(deployment.path, size=1,
                                         executable=True)
    vo.run_process(vo.client_call(
        "agrid01", "register_deployment",
        payload={"xml": deployment.to_xml().to_string()},
    ))
    assert check_vo_invariants(vo) == []

    # plant corruption: delete the binary behind an ACTIVE deployment
    vo.stack("agrid01").site.fs.remove_file(deployment.path)
    violations = check_vo_invariants(vo)
    assert any("missing on disk" in v for v in violations)

    # plant corruption: orphan by_type entry
    vo.stack("agrid01").site.fs.put_file(deployment.path, size=1,
                                         executable=True)
    vo.stack("agrid01").adr.by_type["Inv"].append("ghost:key")
    violations = check_vo_invariants(vo)
    assert any("unknown key" in v for v in violations)
