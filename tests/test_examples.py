"""Regression net: every example script must run to completion.

The examples double as end-to-end scenario tests (they assert
internally); this module executes them in-process via ``runpy``.
They build whole VOs, so the batch is marked ``slow`` except for the
quickstart, which stays in the default run as a smoke test.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "povray_workflow.py",
    "manual_deployment.py",
    "fault_tolerance.py",
    "leasing.py",
    "semantic_discovery.py",
    "agwl_workflow.py",
    "tracing.py",
]


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert present == set(ALL_EXAMPLES)


def test_quickstart_smoke(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Super-peer groups" in out
    assert "deployment(s):" in out
    assert "local cache" in out


@pytest.mark.slow
@pytest.mark.parametrize("name", [e for e in ALL_EXAMPLES if e != "quickstart.py"])
def test_example_runs(name, capsys):
    out = run_example(name, capsys)
    assert out.strip(), f"{name} produced no output"
