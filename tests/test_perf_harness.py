"""Determinism gate for the wall-clock fast path.

Pins the seeded kernel-trace fingerprint and the end-to-end simulated
experiment outputs against the committed ``BENCH_kernel.json``
baseline.  Any optimisation that changes a simulated-time result —
event ordering, CPU charges, message sizes, XPath visit counts — shows
up here as a byte-level diff, independent of how much faster it runs.
"""

import json
from pathlib import Path

import pytest

from repro import perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO_ROOT / "BENCH_kernel.json"

#: hard-coded second copy of the trace pin so a regenerated baseline
#: file cannot silently ratify a behaviour change
KERNEL_TRACE_SHA = "608a9146715772e560498dcaf8ac5d94dbba4f9c21b1022034e9d4eb3f27645b"


@pytest.fixture(scope="module")
def baseline():
    with BASELINE_PATH.open() as handle:
        return json.load(handle)


class TestDeterminismGate:
    def test_kernel_trace_matches_committed_baseline(self, baseline):
        current = perf.kernel_trace_fingerprint()
        assert current == baseline["determinism"]["kernel_trace"]

    def test_kernel_trace_matches_hardcoded_pin(self):
        current = perf.kernel_trace_fingerprint()
        assert current["sha256"] == KERNEL_TRACE_SHA
        assert current["events"] == 266
        assert current["final_time"] == "100.0"

    def test_experiment_outputs_match_committed_baseline(self, baseline):
        current = perf.experiment_fingerprint()
        expected = baseline["determinism"]["experiment"]
        # compare key-by-key so a drift names the quantity that moved
        assert set(current) == set(expected)
        for key in expected:
            assert current[key] == expected[key], f"drift in {key}"


class TestBaselineFile:
    def test_baseline_has_required_rates(self, baseline):
        for name in ("kernel", "rpc", "fig10_registry", "fig10_index"):
            result = baseline["results"][name]
            assert result["value"] > 0
            assert result["wall_seconds"] > 0
            assert result["work_units"] > 0
        assert baseline["peak_rss_kb"] > 0

    def test_compare_to_baseline_accepts_itself(self, baseline):
        assert perf.compare_to_baseline(baseline, baseline) == []

    def test_compare_to_baseline_flags_regression(self, baseline):
        slow = json.loads(json.dumps(baseline))
        slow["results"]["kernel"]["value"] = baseline["results"]["kernel"]["value"] / 3
        failures = perf.compare_to_baseline(slow, baseline, max_regression=0.25)
        assert len(failures) == 1
        assert "kernel" in failures[0]

    def test_small_jitter_within_tolerance(self, baseline):
        jittered = json.loads(json.dumps(baseline))
        for name in ("kernel", "rpc"):
            jittered["results"][name]["value"] *= 0.9
        assert perf.compare_to_baseline(jittered, baseline, max_regression=0.25) == []
