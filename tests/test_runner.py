"""Tests for the multiprocess sweep runner (``repro.runner``).

The runner's promise is that ``--jobs N`` is invisible in the results:
work units are seeded and merged so the fan-out produces byte-identical
figures and fingerprints to a serial run, and a crashing worker
surfaces a clear error instead of a hang or a silent partial result.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig14 import fig14_sweep_digest, run_fig14
from repro.runner import (
    WorkUnit,
    WorkerError,
    derive_seed,
    merge_digests,
    run_units,
    truncate_traceback,
)


# --- helpers importable by worker processes (must be module-level) ---

def _square(x):
    return x * x


def _boom(message):
    raise RuntimeError(message)


class TestRunUnits:
    def test_inline_path_preserves_submission_order(self):
        units = [
            WorkUnit(name=f"sq:{i}", fn="tests.test_runner:_square",
                     kwargs={"x": i})
            for i in (3, 1, 2)
        ]
        assert run_units(units, jobs=1) == [9, 1, 4]

    def test_parallel_results_match_serial(self):
        units = [
            WorkUnit(name=f"sq:{i}", fn="tests.test_runner:_square",
                     kwargs={"x": i})
            for i in range(8)
        ]
        assert run_units(units, jobs=4) == run_units(units, jobs=1)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_empty_unit_list_returns_empty(self, jobs):
        # must not spin up a pool (jobs=4) just to do nothing
        assert run_units([], jobs=jobs) == []

    def test_duplicate_names_rejected(self):
        units = [
            WorkUnit(name="dup", fn="tests.test_runner:_square", kwargs={"x": 1}),
            WorkUnit(name="dup", fn="tests.test_runner:_square", kwargs={"x": 2}),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            run_units(units, jobs=1)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_crash_in_worker_surfaces_clear_error(self, jobs):
        units = [
            WorkUnit(name="ok", fn="tests.test_runner:_square", kwargs={"x": 2}),
            WorkUnit(name="kaboom", fn="tests.test_runner:_boom",
                     kwargs={"message": "deliberate failure"}),
        ]
        with pytest.raises(WorkerError) as excinfo:
            run_units(units, jobs=jobs)
        # the error names the unit, its fn, and carries the child
        # traceback text — enough to debug without re-running serially
        text = str(excinfo.value)
        assert "kaboom" in text
        assert "tests.test_runner:_boom" in text
        assert "deliberate failure" in text


class TestTruncateTraceback:
    def _deep_traceback(self, depth=40):
        # synthetic: real recursive tracebacks get collapsed by
        # CPython's "[Previous line repeated ...]" folding, which is
        # exactly the shape deep sweep failures do NOT have (they cross
        # many distinct runner/simulator frames)
        lines = ["work unit 'deep' failed:",
                 "Traceback (most recent call last):"]
        for i in range(depth):
            lines.append(f'  File "/x/layer{i}.py", line {i + 1}, in step{i}')
            lines.append(f"    step{i + 1}()")
        lines.append('  File "/x/bottom.py", line 1, in recurse')
        lines.append('    raise RuntimeError("bottom of the stack")')
        lines.append("RuntimeError: bottom of the stack")
        return "\n".join(lines)

    def test_short_traceback_untouched(self):
        units = [WorkUnit(name="kaboom", fn="tests.test_runner:_boom",
                          kwargs={"message": "short"})]
        with pytest.raises(WorkerError) as excinfo:
            run_units(units, jobs=1)
        text = str(excinfo.value)
        assert truncate_traceback(text) == text

    def test_deep_traceback_keeps_header_and_tail(self):
        text = self._deep_traceback()
        truncated = truncate_traceback(text, max_frames=20)
        assert truncated != text
        # header preserved, innermost frames preserved, marker present
        assert truncated.startswith("work unit 'deep' failed:")
        assert "bottom of the stack" in truncated
        assert "outer frames elided" in truncated
        assert truncated.count("  File ") == 20
        # the kept frames are the innermost ones (the raise site)
        assert "in recurse" in truncated.rsplit("  File ", 1)[1]


class TestDeterministicMerge:
    def test_merge_digests_is_order_independent(self):
        a = {"fig14:16:base": "aa" * 32, "fig14:16:opt": "bb" * 32}
        b = dict(reversed(list(a.items())))
        assert merge_digests(a) == merge_digests(b)

    def test_merge_digests_sensitive_to_content(self):
        a = {"x": "aa" * 32}
        b = {"x": "ab" * 32}
        assert merge_digests(a) != merge_digests(b)

    def test_derive_seed_is_stable_and_distinct(self):
        s1 = derive_seed(21, "fig14:16:base")
        assert s1 == derive_seed(21, "fig14:16:base")
        assert s1 != derive_seed(21, "fig14:16:opt")
        assert s1 != derive_seed(22, "fig14:16:base")


class TestFig14Parallel:
    def test_fig14_sweep_fingerprint_matches_serial(self):
        serial = run_fig14(sizes=(8, 16), jobs=1)
        fanned = run_fig14(sizes=(8, 16), jobs=4)
        assert fig14_sweep_digest(serial) == fig14_sweep_digest(fanned)
        # and not just the merged digest — the per-point results agree
        for s, f in zip(serial, fanned):
            assert s.n_sites == f.n_sites
            assert s.optimized == f.optimized
            assert s.result_digest == f.result_digest
