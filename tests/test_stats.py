"""Tests for the VO metrics layer."""

import pytest

from repro.apps import get_application, publish_applications
from repro.stats import collect_metrics
from repro.vo import build_vo


@pytest.fixture(scope="module")
def active_vo():
    vo = build_vo(n_sites=4, seed=301, monitors=False)
    publish_applications(vo, ["Wien2k"])
    vo.form_overlay()
    spec = get_application("Wien2k")
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": spec.type_xml}))
    # first resolution triggers an install; second hits the cache
    vo.run_process(vo.client_call("agrid02", "get_deployments",
                                  payload="Wien2k"))
    vo.run_process(vo.client_call("agrid02", "get_deployments",
                                  payload="Wien2k"))
    return vo


def test_resolution_breakdown(active_vo):
    metrics = collect_metrics(active_vo)
    breakdown = metrics.resolution_breakdown()
    assert breakdown["on-demand-deploy"] == 1
    assert breakdown["local"] >= 1  # the cached second resolution
    assert metrics.total("requests") >= 2


def test_super_peer_flags(active_vo):
    metrics = collect_metrics(active_vo)
    super_peers = [m.site for m in metrics.sites.values() if m.is_super_peer]
    assert sorted(super_peers) == active_vo.super_peers()


def test_registry_population_counts(active_vo):
    metrics = collect_metrics(active_vo)
    assert metrics.sites["agrid01"].local_types == 1
    # agrid02 cached the type + deployments during resolution
    assert metrics.sites["agrid02"].cached_types >= 1
    assert metrics.sites["agrid02"].cached_deployments >= 1
    assert metrics.total("local_deployments") >= 2  # wien2k + lapw0


def test_traffic_counters_consistent(active_vo):
    metrics = collect_metrics(active_vo)
    assert metrics.total_messages > 0
    # every message leaving some VO node arrives somewhere (origin host
    # included, so VO-side in/out need not balance exactly; totals do)
    assert metrics.total("messages_out") <= metrics.total_messages


def test_render_is_readable(active_vo):
    text = collect_metrics(active_vo).render()
    assert "VO metrics" in text
    assert "agrid01" in text
    assert "cache hit rate" in text


def test_cache_hit_rate_bounds(active_vo):
    rate = collect_metrics(active_vo).cache_hit_rate()
    assert 0.0 <= rate <= 1.0
