"""Tests for the VO metrics layer."""

import pytest

from repro.apps import get_application, publish_applications
from repro.stats import SiteMetrics, VOMetrics, collect_metrics
from repro.vo import build_vo


@pytest.fixture(scope="module")
def active_vo():
    vo = build_vo(n_sites=4, seed=301, monitors=False)
    publish_applications(vo, ["Wien2k"])
    vo.form_overlay()
    spec = get_application("Wien2k")
    vo.run_process(vo.client_call("agrid01", "register_type",
                                  payload={"xml": spec.type_xml}))
    # first resolution triggers an install; second hits the cache
    vo.run_process(vo.client_call("agrid02", "get_deployments",
                                  payload="Wien2k"))
    vo.run_process(vo.client_call("agrid02", "get_deployments",
                                  payload="Wien2k"))
    return vo


def test_resolution_breakdown(active_vo):
    metrics = collect_metrics(active_vo)
    breakdown = metrics.resolution_breakdown()
    assert breakdown["on-demand-deploy"] == 1
    assert breakdown["local"] >= 1  # the cached second resolution
    assert metrics.total("requests") >= 2


def test_super_peer_flags(active_vo):
    metrics = collect_metrics(active_vo)
    super_peers = [m.site for m in metrics.sites.values() if m.is_super_peer]
    assert sorted(super_peers) == active_vo.super_peers()


def test_registry_population_counts(active_vo):
    metrics = collect_metrics(active_vo)
    assert metrics.sites["agrid01"].local_types == 1
    # agrid02 cached the type + deployments during resolution
    assert metrics.sites["agrid02"].cached_types >= 1
    assert metrics.sites["agrid02"].cached_deployments >= 1
    assert metrics.total("local_deployments") >= 2  # wien2k + lapw0


def test_traffic_counters_consistent(active_vo):
    metrics = collect_metrics(active_vo)
    assert metrics.total_messages > 0
    # every message leaving some VO node arrives somewhere (origin host
    # included, so VO-side in/out need not balance exactly; totals do)
    assert metrics.total("messages_out") <= metrics.total_messages


def test_render_is_readable(active_vo):
    text = collect_metrics(active_vo).render()
    assert "VO metrics" in text
    assert "agrid01" in text
    assert "cache hit rate" in text


def test_cache_hit_rate_bounds(active_vo):
    rate = collect_metrics(active_vo).cache_hit_rate()
    assert 0.0 <= rate <= 1.0


def test_bytes_reconcile(active_vo):
    """Wire totals decompose exactly into per-node sums.

    Each message leg is counted once on the wire and charged to exactly
    one sender, so the wire byte total must equal the member-site
    ``bytes_out`` sum plus the origin host's.  With every node online
    (as here), the receive side reconciles identically.
    """
    metrics = collect_metrics(active_vo)
    assert metrics.wire_bytes == metrics.total_bytes  # alias
    assert metrics.wire_bytes == (
        metrics.site_bytes_out + metrics.origin_bytes_out
    )
    assert metrics.wire_bytes == (
        metrics.site_bytes_in + metrics.origin_bytes_in
    )
    # the deployment pipeline pulled archives from the origin host
    assert metrics.origin_bytes_out > 0


def test_render_reports_byte_split(active_vo):
    text = collect_metrics(active_vo).render()
    assert "wire:" in text
    assert "site in/out:" in text
    assert "origin" in text


def test_cache_hit_rate_zero_lookups():
    metrics = VOMetrics(taken_at=0.0)
    metrics.sites["s1"] = SiteMetrics(site="s1")
    assert metrics.cache_hit_rate() == 0.0


def test_render_empty_vo():
    """A snapshot with no sites still renders without dividing by zero."""
    metrics = VOMetrics(taken_at=0.0)
    text = metrics.render()
    assert "VO metrics" in text
    assert "cache hit rate 0.0%" in text
    assert metrics.resolution_breakdown() == {
        "local": 0, "group": 0, "super-peer": 0, "on-demand-deploy": 0,
    }


def test_collect_metrics_without_probes():
    """collect_metrics falls back to direct reads for hand-built VOs."""
    vo = build_vo(n_sites=2, seed=302, monitors=False)
    vo.obs.metrics._site_probes.clear()  # simulate a bare assembly
    metrics = collect_metrics(vo)
    assert set(metrics.sites) == set(vo.site_names)
