"""Unit tests for the VO builder."""

import pytest

from repro.vo import ORIGIN, VOConfig, build_vo


class TestBuildVo:
    def test_full_stack_per_site(self):
        vo = build_vo(n_sites=3, seed=1, monitors=False)
        for name in vo.site_names:
            stack = vo.stack(name)
            assert stack.index is not None
            assert stack.gridftp is not None
            assert stack.gram is not None
            assert stack.atr is not None
            assert stack.adr is not None
            assert stack.gridarm is not None
            assert stack.rdm is not None
            runtime = vo.network.node(name)
            for service in ("mds-index", "gridftp", "gram",
                            "activity-type-registry",
                            "activity-deployment-registry",
                            "gridarm-reservation", "glare-rdm"):
                assert service in runtime.services, (name, service)

    def test_community_index_on_first_site(self):
        vo = build_vo(n_sites=3, seed=1, monitors=False)
        assert vo.community_site == "agrid00"
        assert vo.stack("agrid00").index.community
        assert not vo.stack("agrid01").index.community

    def test_origin_site_exists_with_gridftp_only(self):
        vo = build_vo(n_sites=2, seed=1, monitors=False)
        runtime = vo.network.node(ORIGIN)
        assert "gridftp" in runtime.services
        assert "glare-rdm" not in runtime.services

    def test_membership_bootstrapped(self):
        vo = build_vo(n_sites=4, seed=1, monitors=False)
        community = vo.stack(vo.community_site).index
        assert set(community.live_sites()) == set(vo.site_names)

    def test_heterogeneous_site_attributes(self):
        vo = build_vo(n_sites=6, seed=1, monitors=False)
        speeds = {vo.stack(n).site.description.processor_speed_mhz
                  for n in vo.site_names}
        assert len(speeds) > 1
        ranks = {vo.stack(n).site.rank() for n in vo.site_names}
        assert len(ranks) == 6  # unique, as the election requires

    def test_config_validation(self):
        with pytest.raises(ValueError):
            build_vo(n_sites=0)
        with pytest.raises(ValueError):
            build_vo(VOConfig(n_sites=2), n_sites=3)

    def test_security_config_propagates(self):
        vo = build_vo(n_sites=2, seed=1, security=True, monitors=False)
        assert vo.network.security.enabled
        vo2 = build_vo(n_sites=2, seed=1, monitors=False)
        assert not vo2.network.security.enabled

    def test_run_process_returns_value(self):
        vo = build_vo(n_sites=2, seed=1, monitors=False)

        def gen():
            yield vo.sim.timeout(5)
            return "done"

        assert vo.run_process(gen()) == "done"

    def test_run_process_with_deadline(self):
        vo = build_vo(n_sites=2, seed=1, monitors=False)

        def slow():
            yield vo.sim.timeout(100)

        with pytest.raises(TimeoutError):
            vo.run_process(slow(), until=vo.sim.now + 1)

    def test_publish_archive_and_deployfile(self):
        vo = build_vo(n_sites=2, seed=1, monitors=False)
        vo.publish_archive("http://x/a.tgz", size=1234, md5sum="m")
        site, path = vo.url_catalog.resolve("http://x/a.tgz")
        assert site == ORIGIN
        assert vo.origin.fs.get_file(path).size == 1234
        vo.publish_deployfile("http://x/a.build", "<Build name='a'/>")
        assert vo.url_catalog.content("http://x/a.build") == "<Build name='a'/>"

    def test_determinism_across_builds(self):
        """Same seed + same operations => identical simulated timings."""
        def run_once():
            vo = build_vo(n_sites=3, seed=99, monitors=False)
            vo.form_overlay()
            vo.run_process(vo.client_call(
                "agrid01", "register_type",
                payload={"xml": '<ActivityTypeEntry name="D" kind="abstract"/>'},
            ))
            wire = vo.run_process(vo.client_call("agrid02", "lookup_type",
                                                 payload="D"))
            return vo.sim.now, wire is not None

        assert run_once() == run_once()
