"""Tests for the AGWL workflow dialect parser/serializer."""

import pytest

from repro.workflow import Workflow, WorkflowError
from repro.workflow.agwl import parse_agwl, to_agwl

SAMPLE = """
<agwl name="povray-imaging">
  <Activity id="convert" type="ImageConversion" demand="8">
    <Input name="scene.pov" size="200000"/>
    <Output name="image.png" size="4000000"/>
  </Activity>
  <Activity id="visualize" type="Visualization" demand="2">
    <Input name="image.png" size="4000000"/>
  </Activity>
  <Dependency from="convert" to="visualize"/>
</agwl>
"""


class TestParse:
    def test_parse_sample(self):
        workflow = parse_agwl(SAMPLE)
        assert workflow.name == "povray-imaging"
        assert set(workflow.nodes) == {"convert", "visualize"}
        convert = workflow.nodes["convert"]
        assert convert.type_name == "ImageConversion"
        assert convert.demand == 8.0
        assert convert.inputs[0].name == "scene.pov"
        assert convert.outputs[0].size == 4_000_000
        assert workflow.edges == [("convert", "visualize")]

    def test_parse_matches_builtin_example(self):
        parsed = parse_agwl(SAMPLE)
        builtin = Workflow.povray_example()
        assert set(parsed.nodes) == set(builtin.nodes)
        assert parsed.edges == builtin.edges

    def test_wrong_root_rejected(self):
        with pytest.raises(WorkflowError, match="agwl"):
            parse_agwl("<workflow/>")

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowError, match="cycle"):
            parse_agwl("""
<agwl name="loop">
  <Activity id="a" type="T"/>
  <Activity id="b" type="T"/>
  <Dependency from="a" to="b"/>
  <Dependency from="b" to="a"/>
</agwl>""")

    def test_unknown_dependency_endpoint_rejected(self):
        with pytest.raises(WorkflowError):
            parse_agwl("""
<agwl name="bad">
  <Activity id="a" type="T"/>
  <Dependency from="a" to="ghost"/>
</agwl>""")

    def test_bad_demand_rejected(self):
        with pytest.raises(WorkflowError, match="demand"):
            parse_agwl('<agwl name="x"><Activity id="a" type="T" demand="lots"/></agwl>')


class TestRoundtrip:
    def test_roundtrip_preserves_structure(self):
        original = parse_agwl(SAMPLE)
        again = parse_agwl(to_agwl(original))
        assert set(again.nodes) == set(original.nodes)
        assert again.edges == original.edges
        for node_id, node in original.nodes.items():
            other = again.nodes[node_id]
            assert other.type_name == node.type_name
            assert other.demand == node.demand
            assert [i.name for i in other.inputs] == [i.name for i in node.inputs]
            assert [o.size for o in other.outputs] == [o.size for o in node.outputs]

    def test_roundtrip_builtin_example(self):
        workflow = Workflow.povray_example()
        again = parse_agwl(to_agwl(workflow))
        assert set(again.nodes) == set(workflow.nodes)
        assert again.edges == workflow.edges


PARALLEL_FOR = """
<agwl name="tiled">
  <Activity id="split" type="Splitter" demand="1">
    <Output name="tiles.idx" size="1000"/>
  </Activity>
  <ParallelFor id="tile" count="4" type="ImageConversion" demand="6">
    <Output name="tile.png" size="1000000"/>
  </ParallelFor>
  <Activity id="merge" type="Compositor" demand="2"/>
  <Dependency from="split" to="tile"/>
  <Dependency from="tile" to="merge"/>
</agwl>
"""


class TestParallelFor:
    def test_expansion(self):
        wf = parse_agwl(PARALLEL_FOR)
        assert set(wf.nodes) == {"split", "merge",
                                 "tile_0", "tile_1", "tile_2", "tile_3"}
        for index in range(4):
            node = wf.nodes[f"tile_{index}"]
            assert node.type_name == "ImageConversion"
            assert node.outputs[0].name == f"tile_{index}.png"

    def test_fan_out_and_in_edges(self):
        wf = parse_agwl(PARALLEL_FOR)
        assert set(wf.successors("split")) == {f"tile_{i}" for i in range(4)}
        assert set(wf.predecessors("merge")) == {f"tile_{i}" for i in range(4)}

    def test_iterations_are_parallel(self):
        wf = parse_agwl(PARALLEL_FOR)
        # no edges among the iterations themselves
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert (f"tile_{i}", f"tile_{j}") not in wf.edges

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkflowError, match="count"):
            parse_agwl('<agwl name="x"><ParallelFor id="p" count="0" type="T"/></agwl>')
        with pytest.raises(WorkflowError, match="count"):
            parse_agwl('<agwl name="x"><ParallelFor id="p" count="many" type="T"/></agwl>')
