"""Data staging between workflow activities on different sites."""

import pytest

from repro.glare.model import ActivityDeployment, DeploymentKind, DeploymentStatus
from repro.vo import build_vo
from repro.workflow import (
    ActivityNode,
    DataItem,
    EnactmentEngine,
    Workflow,
)
from repro.workflow.scheduler import Schedule, ScheduledActivity

TYPE_XML = (
    '<ActivityTypeEntry name="Stage" kind="concrete">'
    "<Domain>x</Domain></ActivityTypeEntry>"
)


@pytest.fixture()
def vo():
    vo = build_vo(n_sites=3, seed=251, monitors=False)
    vo.form_overlay()
    for site in ("agrid01", "agrid02"):
        vo.run_process(vo.client_call(site, "register_type",
                                      payload={"xml": TYPE_XML}))
        deployment = ActivityDeployment(
            name="stage", type_name="Stage", kind=DeploymentKind.EXECUTABLE,
            site=site, path="/opt/deployments/stage/bin/stage",
            status=DeploymentStatus.ACTIVE,
        )
        vo.stack(site).site.fs.put_file(deployment.path, size=10,
                                        executable=True)
        vo.run_process(vo.client_call(
            site, "register_deployment",
            payload={"xml": deployment.to_xml().to_string()},
        ))
    return vo


def cross_site_schedule(vo, output_size):
    """producer on agrid01, consumer on agrid02 — staging required."""
    wf = Workflow("staged")
    wf.add(ActivityNode("produce", "Stage", demand=1.0,
                        outputs=[DataItem("intermediate.dat", output_size)]))
    wf.add(ActivityNode("consume", "Stage", demand=1.0,
                        inputs=[DataItem("intermediate.dat", output_size)]))
    wf.connect("produce", "consume")
    schedule = Schedule(workflow=wf, home_site="agrid00")
    for node_id, site in (("produce", "agrid01"), ("consume", "agrid02")):
        deployment = vo.stack(site).adr.deployments[f"{site}:stage"]
        schedule.mappings[node_id] = ScheduledActivity(
            node=wf.nodes[node_id], deployment=deployment)
    return schedule


class TestStaging:
    def test_cross_site_output_is_staged(self, vo):
        schedule = cross_site_schedule(vo, output_size=5_000_000)
        engine = EnactmentEngine(vo, "agrid00")
        result = vo.run_process(engine.run(schedule))
        assert result.success, result.error
        assert result.bytes_staged == 5_000_000
        assert result.runs["consume"].transfer_time > 0.3  # 5MB over WAN
        # the intermediate file exists on BOTH sites afterwards
        for site in ("agrid01", "agrid02"):
            assert vo.stack(site).site.fs.exists(
                "/scratch/wf/staged/intermediate.dat")

    def test_staging_time_scales_with_size(self, vo):
        small = cross_site_schedule(vo, output_size=500_000)
        engine = EnactmentEngine(vo, "agrid00")
        result_small = vo.run_process(engine.run(small))
        vo2 = vo  # same VO; new workflow name avoids collisions
        big_schedule = cross_site_schedule(vo2, output_size=20_000_000)
        big_schedule.workflow.name = "staged-big"
        result_big = vo2.run_process(engine.run(big_schedule))
        assert (result_big.runs["consume"].transfer_time
                > result_small.runs["consume"].transfer_time * 3)

    def test_colocated_nodes_stage_nothing(self, vo):
        wf = Workflow("local")
        wf.add(ActivityNode("a", "Stage", demand=1.0,
                            outputs=[DataItem("x.dat", 1_000_000)]))
        wf.add(ActivityNode("b", "Stage", demand=1.0))
        wf.connect("a", "b")
        schedule = Schedule(workflow=wf, home_site="agrid00")
        deployment = vo.stack("agrid01").adr.deployments["agrid01:stage"]
        for node_id in ("a", "b"):
            schedule.mappings[node_id] = ScheduledActivity(
                node=wf.nodes[node_id], deployment=deployment)
        engine = EnactmentEngine(vo, "agrid00")
        result = vo.run_process(engine.run(schedule))
        assert result.success
        assert result.bytes_staged == 0
