"""Workflow model, scheduler, and enactment tests (paper Figs. 1/4)."""

import pytest

from repro.apps import publish_applications, register_application, register_base_hierarchy
from repro.vo import build_vo
from repro.workflow import (
    ActivityNode,
    DataItem,
    EnactmentEngine,
    Scheduler,
    Workflow,
    WorkflowError,
)
from repro.workflow.enactment import run_workflow


class TestWorkflowModel:
    def test_topological_order(self):
        wf = Workflow("t")
        for node_id in ("a", "b", "c"):
            wf.add(ActivityNode(node_id, "T"))
        wf.connect("a", "b")
        wf.connect("b", "c")
        assert [n.node_id for n in wf.topological_order()] == ["a", "b", "c"]

    def test_cycle_detection(self):
        wf = Workflow("t")
        wf.add(ActivityNode("a", "T"))
        wf.add(ActivityNode("b", "T"))
        wf.connect("a", "b")
        wf.connect("b", "a")
        with pytest.raises(WorkflowError, match="cycle"):
            wf.validate()

    def test_duplicate_node_rejected(self):
        wf = Workflow("t")
        wf.add(ActivityNode("a", "T"))
        with pytest.raises(WorkflowError):
            wf.add(ActivityNode("a", "T"))

    def test_unknown_edge_endpoint(self):
        wf = Workflow("t")
        wf.add(ActivityNode("a", "T"))
        with pytest.raises(WorkflowError):
            wf.connect("a", "ghost")

    def test_self_edge_rejected(self):
        wf = Workflow("t")
        wf.add(ActivityNode("a", "T"))
        with pytest.raises(WorkflowError):
            wf.connect("a", "a")

    def test_povray_example_shape(self):
        wf = Workflow.povray_example()
        assert wf.activity_types() == {"ImageConversion", "Visualization"}
        assert wf.predecessors("visualize") == ["convert"]


@pytest.fixture(scope="module")
def imaging_vo():
    """A VO with the imaging stack registered and overlay formed."""
    vo = build_vo(n_sites=4, seed=21, monitors=False)
    publish_applications(vo)
    vo.form_overlay()
    vo.run_process(register_base_hierarchy(vo, "agrid01"))
    for app in ("Java", "Ant", "JPOVray", "ImageViewer"):
        vo.run_process(register_application(vo, "agrid01", app))
    return vo


class TestSchedulerAndEnactment:
    def test_map_povray_workflow(self, imaging_vo):
        vo = imaging_vo
        wf = Workflow.povray_example()
        scheduler = Scheduler(vo, "agrid02")
        schedule = vo.run_process(scheduler.map_workflow(wf))
        assert set(schedule.mappings) == {"convert", "visualize"}
        assert schedule.mappings["convert"].deployment.type_name == "JPOVray"
        assert schedule.mappings["visualize"].deployment.type_name == "ImageViewer"
        assert schedule.mapping_time > 0

    def test_enact_workflow_end_to_end(self, imaging_vo):
        vo = imaging_vo
        wf = Workflow.povray_example()
        result, schedule = vo.run_process(run_workflow(vo, wf, "agrid03"))
        assert result.success, result.error
        assert set(result.runs) == {"convert", "visualize"}
        # convert ran before visualize
        assert (
            result.runs["convert"].finished_at
            <= result.runs["visualize"].started_at
        )
        assert result.makespan > 0

    def test_parallel_branches_overlap(self, imaging_vo):
        vo = imaging_vo
        wf = Workflow("fan")
        wf.add(ActivityNode("prep", "JPOVray", demand=1.0))
        for i in range(3):
            wf.add(ActivityNode(f"render{i}", "JPOVray", demand=6.0))
            wf.connect("prep", f"render{i}")
        result, _ = vo.run_process(run_workflow(vo, wf, "agrid02"))
        assert result.success
        starts = [result.runs[f"render{i}"].started_at for i in range(3)]
        ends = [result.runs[f"render{i}"].finished_at for i in range(3)]
        # the three renders overlap in time rather than running serially
        assert max(starts) < min(ends)

    def test_enactment_retries_on_site_failure(self, imaging_vo):
        vo = imaging_vo
        wf = Workflow("retry")
        wf.add(ActivityNode("render", "JPOVray", demand=2.0))
        scheduler = Scheduler(vo, "agrid02")
        schedule = vo.run_process(scheduler.map_workflow(wf))
        victim = schedule.site_of("render")
        vo.stack(victim).site.fail()
        engine = EnactmentEngine(vo, "agrid02", max_retries=2)
        result = vo.run_process(engine.run(schedule))
        vo.stack(victim).site.recover()
        assert result.success, result.error
        assert result.runs["render"].site != victim
        assert result.retries >= 1

    def test_unmappable_workflow_fails_cleanly(self, imaging_vo):
        vo = imaging_vo
        wf = Workflow("bad")
        wf.add(ActivityNode("x", "NoSuchType"))
        scheduler = Scheduler(vo, "agrid02")
        with pytest.raises(Exception):
            vo.run_process(scheduler.map_workflow(wf))
