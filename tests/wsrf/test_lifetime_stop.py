"""Regression tests: a stopped LifetimeManager holds no agenda entry.

``stop()`` used to interrupt the sweep loop but leave its pending
``timeout(interval)`` on the agenda until the tick lapsed — a drained
VO (e.g. after orchestration scale-in) kept one standing event per
stopped sweeper.  ``stop()`` now cancels the pending timeout outright
and is idempotent.
"""

import math

from repro.simkernel import Simulator
from repro.wsrf import LifetimeManager, ResourceHome

from tests.wsrf.test_resources import make_resource


def drained_manager(interval=5.0, until=12.0):
    sim = Simulator()
    home = ResourceHome()
    home.add(make_resource("eternal"))
    manager = LifetimeManager(sim, interval=interval)
    manager.watch(home)
    manager.start()
    sim.run(until=until)
    return sim, manager


class TestStopAgendaHygiene:
    def test_agenda_empty_after_stop(self):
        sim, manager = drained_manager()
        # mid-interval: the next sweep tick is scheduled in the future
        assert not math.isinf(sim.peek())
        manager.stop()
        sim.run()  # deliver the interrupt; nothing else may remain
        assert math.isinf(sim.peek())

    def test_stop_is_idempotent(self):
        sim, manager = drained_manager()
        manager.stop()
        manager.stop()
        manager.stop()
        sim.run()
        assert math.isinf(sim.peek())

    def test_stop_before_start_is_a_noop(self):
        sim = Simulator()
        manager = LifetimeManager(sim, interval=1.0)
        manager.stop()
        assert math.isinf(sim.peek())

    def test_stopped_manager_sweeps_no_more(self):
        sim, manager = drained_manager(interval=2.0, until=3.0)
        home = manager._homes[0][0]
        doomed = home.add(make_resource("doomed"))
        doomed.set_termination_time(sim.now + 0.5)
        manager.stop()
        sim.run(until=sim.now + 50.0)
        # the resource expired but nobody swept it
        assert manager.expired_total == 0
        assert home.lookup("doomed") is doomed

    def test_restartable_after_stop(self):
        sim, manager = drained_manager(interval=2.0, until=3.0)
        manager.stop()
        sim.run()
        manager.start()  # a fresh sweep loop may be launched
        home = manager._homes[0][0]
        doomed = home.add(make_resource("doomed"))
        doomed.set_termination_time(sim.now + 0.5)
        sim.run(until=sim.now + 5.0)
        assert manager.expired_total == 1
