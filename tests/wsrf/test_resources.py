"""Unit tests for WS-Resources, lifetime, service groups, notification."""

import pytest

from repro.net import Network, Topology
from repro.simkernel import Simulator
from repro.wsrf import (
    EndpointReference,
    LifetimeManager,
    NotificationBroker,
    NotificationSink,
    ResourceHome,
    ServiceGroup,
    WSResource,
)
from repro.wsrf.xmldoc import Element


def make_resource(key="r1", lut=0.0):
    epr = EndpointReference(
        address="siteA/registry", service="ActivityTypeRegistry", key=key,
        last_update_time=lut,
    )
    return WSResource(key, Element("Props", attrib={"name": key}), epr)


class TestEndpointReference:
    def test_site_extraction(self):
        epr = EndpointReference("innsbruck/atr", "ATR", "jpovray")
        assert epr.site == "innsbruck"

    def test_touched_updates_lut_only(self):
        epr = EndpointReference("a/s", "S", "k", last_update_time=1.0)
        fresh = epr.touched(9.0)
        assert fresh.last_update_time == 9.0
        assert fresh.same_resource(epr)

    def test_to_xml_shape(self):
        epr = EndpointReference("138.232.1.2/adr", "ActivityDeploymentRegistry", "jpovray")
        xml = epr.to_xml()
        assert xml.tag == "EndpointReference"
        assert "ActivityDeploymentRegistry" in xml.findtext("Address")
        ref = xml.find("ReferenceProperties")
        assert ref.findtext("ResourceKey") == "jpovray"
        assert ref.find("LastUpdateTime") is not None


class TestResourceHome:
    def test_named_lookup(self):
        home = ResourceHome()
        home.add(make_resource("a"))
        home.add(make_resource("b"))
        assert home.lookup("a").key == "a"
        assert home.lookup("zzz") is None
        assert sorted(home.keys()) == ["a", "b"]

    def test_replace_same_key(self):
        home = ResourceHome()
        first = home.add(make_resource("a"))
        second = home.add(make_resource("a"))
        assert home.lookup("a") is second
        assert len(home) == 1
        assert first is not second

    def test_destroyed_resources_vanish(self):
        home = ResourceHome()
        res = home.add(make_resource("a"))
        res.destroy()
        assert home.lookup("a") is None
        assert home.keys() == []

    def test_sweep_expired(self):
        home = ResourceHome()
        keep = home.add(make_resource("keep"))
        kill = home.add(make_resource("kill"))
        kill.set_termination_time(5.0)
        expired = home.sweep_expired(now=10.0)
        assert expired == [kill]
        assert home.lookup("keep") is keep
        assert home.lookup("kill") is None


class TestLifetimeManager:
    def test_periodic_sweep_and_listener(self):
        sim = Simulator()
        home = ResourceHome()
        res = home.add(make_resource("doomed"))
        res.set_termination_time(7.0)
        seen = []
        manager = LifetimeManager(sim, interval=2.0)
        manager.watch(home, listener=lambda r: seen.append((sim.now, r.key)))
        manager.start()
        sim.run(until=20)
        assert seen == [(8.0, "doomed")]
        assert manager.expired_total == 1

    def test_infinite_lifetime_survives(self):
        sim = Simulator()
        home = ResourceHome()
        home.add(make_resource("eternal"))
        manager = LifetimeManager(sim, interval=1.0)
        manager.watch(home)
        manager.start()
        sim.run(until=100)
        assert home.lookup("eternal") is not None


class TestServiceGroup:
    def test_add_query_remove(self):
        sim = Simulator()
        group = ServiceGroup(sim)
        res = make_resource("k1")
        group.add(res.epr, res.properties)
        assert len(group) == 1
        assert group.find_by_key("k1") is not None
        assert group.remove(res.epr) is True
        assert len(group) == 0

    def test_refresh_pulls_new_content(self):
        sim = Simulator()
        group = ServiceGroup(sim, refresh_interval=5.0)
        state = {"doc": Element("V", attrib={"v": "1"})}
        res = make_resource("k1")
        group.add(res.epr, state["doc"], provider=lambda: state["doc"])
        state["doc"] = Element("V", attrib={"v": "2"})
        group.start()
        sim.run(until=6)
        assert group.entries()[0].content.get("v") == "2"

    def test_vanished_member_dropped_after_misses(self):
        sim = Simulator()
        group = ServiceGroup(sim, refresh_interval=1.0, max_stale_misses=2)
        res = make_resource("gone")
        group.add(res.epr, res.properties, provider=lambda: None)
        group.start()
        sim.run(until=5)
        assert len(group) == 0


class TestNotification:
    def make_world(self):
        sim = Simulator(seed=3)
        topo = Topology.full_mesh(["pub", "s1", "s2"], latency=0.002, bandwidth=1e7)
        net = Network(sim, topo)
        for s in ("pub", "s1", "s2"):
            net.add_node(s)
        return sim, net

    def test_fanout_delivery(self):
        sim, net = self.make_world()
        sink1 = NotificationSink(net, "s1")
        sink2 = NotificationSink(net, "s2")
        broker = NotificationBroker(net, "pub")
        broker.subscribe("updates", "s1", sink1.name)
        broker.subscribe("updates", "s2", sink2.name)
        broker.publish("updates", {"event": "deployed"})
        sim.run()
        assert sink1.received == [{"event": "deployed"}]
        assert sink2.received == [{"event": "deployed"}]
        assert broker.delivered == 2

    def test_offline_sink_unsubscribed(self):
        sim, net = self.make_world()
        sink = NotificationSink(net, "s1")
        broker = NotificationBroker(net, "pub")
        broker.subscribe("t", "s1", sink.name)
        net.set_online("s1", False)
        broker.publish("t", "x")
        sim.run()
        assert broker.failed_deliveries == 1
        assert broker.subscriber_count("t") == 0

    def test_unsubscribe_stops_delivery(self):
        sim, net = self.make_world()
        sink = NotificationSink(net, "s1")
        broker = NotificationBroker(net, "pub")
        sub = broker.subscribe("t", "s1", sink.name)
        broker.unsubscribe(sub)
        broker.publish("t", "x")
        sim.run()
        assert sink.received == []

    def test_publish_loads_publisher_cpu(self):
        sim, net = self.make_world()
        sinks = [NotificationSink(net, "s1", name=f"sink{i}") for i in range(20)]
        broker = NotificationBroker(net, "pub", publish_demand=0.01)
        for sink in sinks:
            broker.subscribe("t", "s1", sink.name)
        broker.publish("t", "payload")
        sim.run()
        pub_cpu = net.node("pub").cpu
        assert pub_cpu.busy_time >= 20 * 0.01 * 0.9
