"""Subscription lifetime (TTL) semantics of the notification broker."""

import pytest

from repro.net import Network, Topology
from repro.simkernel import Simulator
from repro.wsrf.notification import NotificationBroker, NotificationSink


def make_world():
    sim = Simulator(seed=5)
    topo = Topology.full_mesh(["pub", "sink"], latency=0.002, bandwidth=1e7)
    net = Network(sim, topo)
    net.add_node("pub")
    net.add_node("sink")
    sink = NotificationSink(net, "sink")
    broker = NotificationBroker(net, "pub")
    return sim, net, broker, sink


def test_expired_subscription_dropped_at_publish():
    sim, net, broker, sink = make_world()
    broker.subscribe("t", "sink", sink.name, ttl=10.0)
    broker.publish("t", "early")
    sim.run(until=5)
    assert sink.received == ["early"]
    sim.run(until=20)
    broker.publish("t", "late")
    sim.run(until=25)
    assert sink.received == ["early"]  # expired before the second publish
    assert broker.subscriber_count("t") == 0


def test_unbounded_subscription_never_expires():
    sim, net, broker, sink = make_world()
    broker.subscribe("t", "sink", sink.name)
    sim.run(until=10_000)
    broker.publish("t", "still-here")
    sim.run(until=10_005)
    assert sink.received == ["still-here"]


def test_mixed_ttls_partial_expiry():
    sim, net, broker, sink = make_world()
    sink2 = NotificationSink(net, "sink", name="sink2")
    broker.subscribe("t", "sink", sink.name, ttl=5.0)
    broker.subscribe("t", "sink", sink2.name, ttl=500.0)
    sim.run(until=50)
    count = broker.publish("t", "x")
    sim.run(until=55)
    assert count == 1
    assert sink.received == []
    assert sink2.received == ["x"]
