"""Unit tests for the XML infoset and parser."""

import pytest

from repro.wsrf.xmldoc import Element, XmlParseError, parse_xml

DEPLOYFILE_SAMPLE = """
<?xml version="1.0"?>
<!-- deploy-file for POVray, paper Fig. 9 -->
<Build baseDir="/tmp/papers/" defaultTask="Deploy" name="Povray">
  <Step name="Init" task="mkdir-p" baseDir="$DEPLOYMENT_DIR" timeout="10">
    <Env name="POVRAY_HOME" value="$DEPLOYMENT_DIR/povray/"/>
    <Property name="argument" value="$POVRAY_HOME"/>
  </Step>
  <Step name="Download" depends="Init" task="globus-url-copy" timeout="20">
    <Property name="source" value="http://www.povray.org/povlinux-3.6.tgz"/>
  </Step>
</Build>
"""


class TestParser:
    def test_parse_deployfile(self):
        root = parse_xml(DEPLOYFILE_SAMPLE)
        assert root.tag == "Build"
        assert root.get("name") == "Povray"
        steps = root.findall("Step")
        assert [s.get("name") for s in steps] == ["Init", "Download"]
        assert steps[1].get("depends") == "Init"
        prop = steps[1].find("Property")
        assert prop.get("name") == "source"
        assert prop.get("value").startswith("http://")

    def test_text_content(self):
        root = parse_xml("<A><B>hello</B><C> spaced </C></A>")
        assert root.findtext("B") == "hello"
        assert root.findtext("C") == "spaced"

    def test_self_closing_and_attrs(self):
        root = parse_xml('<X a="1" b="two"/>')
        assert root.attrib == {"a": "1", "b": "two"}
        assert root.children == []

    def test_escapes_roundtrip(self):
        original = Element("T", text='a < b & "c"')
        parsed = parse_xml(original.to_string())
        assert parsed.text == 'a < b & "c"'

    def test_comments_skipped(self):
        root = parse_xml("<A><!-- note --><B/><!-- tail --></A>")
        assert [c.tag for c in root.children] == ["B"]

    def test_mismatched_tag_raises(self):
        with pytest.raises(XmlParseError, match="mismatched"):
            parse_xml("<A><B></A></B>")

    def test_unterminated_raises(self):
        with pytest.raises(XmlParseError):
            parse_xml("<A><B>")

    def test_unquoted_attr_raises(self):
        with pytest.raises(XmlParseError, match="quoted"):
            parse_xml("<A x=1/>")

    def test_trailing_content_raises(self):
        with pytest.raises(XmlParseError, match="trailing"):
            parse_xml("<A/><B/>")

    def test_error_position_reported(self):
        try:
            parse_xml("<A>\n  <B x=></B>\n</A>")
        except XmlParseError as e:
            assert e.line == 2
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")


class TestElement:
    def test_make_child_and_find(self):
        root = Element("Root")
        root.make_child("Item", text="one", idx="1")
        root.make_child("Item", text="two", idx="2")
        assert len(root.findall("Item")) == 2
        assert root.find("Item").get("idx") == "1"
        assert root.find("Missing") is None

    def test_iter_and_count(self):
        root = parse_xml("<A><B><C/></B><D/></A>")
        assert [e.tag for e in root.iter()] == ["A", "B", "C", "D"]
        assert root.count_nodes() == 4

    def test_deep_copy_is_detached(self):
        root = parse_xml('<A k="v"><B/></A>')
        clone = root.deep_copy()
        clone.find("B").make_child("C")
        assert root.find("B").children == []
        assert clone.equals(root) is False
        assert root.equals(root.deep_copy())

    def test_parent_links(self):
        root = parse_xml("<A><B><C/></B></A>")
        c = root.find("B").find("C")
        assert c.parent.tag == "B"
        assert c.parent.parent is root

    def test_roundtrip_serialization(self):
        root = parse_xml(DEPLOYFILE_SAMPLE)
        again = parse_xml(root.to_string())
        assert root.equals(again)


class TestTraversalConsistency:
    """preorder/walk_matching/count_nodes must agree with iter()."""

    def _doc(self):
        root = Element("R")
        for i in range(3):
            entry = root.make_child("Entry", name=f"e{i}")
            entry.make_child("Type", text="Imaging")
            deep = entry.make_child("Deployment", name=f"d{i}")
            deep.make_child("Path", text=f"/opt/{i}")
        return root

    def test_preorder_matches_iter(self):
        doc = self._doc()
        assert doc.preorder() == list(doc.iter())

    def test_preorder_single_node(self):
        leaf = Element("Leaf")
        assert leaf.preorder() == [leaf]

    def test_walk_matching_agrees_with_filtered_iter(self):
        doc = self._doc()
        for tag in ("Entry", "Type", "Nope", None):
            out = []
            visited = doc.walk_matching(tag, out)
            expected = [e for e in doc.iter() if tag is None or e.tag == tag]
            assert out == expected
            assert visited == doc.count_nodes()

    def test_walk_matching_appends_to_existing_list(self):
        doc = self._doc()
        out = ["sentinel"]
        doc.walk_matching("Type", out)
        assert out[0] == "sentinel"
        assert len(out) == 4

    def test_count_nodes_matches_iter_length(self):
        doc = self._doc()
        assert doc.count_nodes() == len(list(doc.iter())) == 13
        assert Element("One").count_nodes() == 1
