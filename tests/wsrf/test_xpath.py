"""Unit tests for the XPath-subset engine."""

import pytest

from repro.wsrf.xmldoc import parse_xml
from repro.wsrf.xpath import XPathError, XPathQuery, xpath_find

DOC = parse_xml(
    """
<Registry>
  <Entry name="JPOVray" kind="concrete">
    <Type>Imaging</Type>
    <Deployment name="jpovray" kind="executable" path="/opt/jpovray/bin/jpovray"/>
    <Deployment name="WS-JPOVray" kind="service" path="https://s3/wsrf/povray"/>
  </Entry>
  <Entry name="Wien2k" kind="concrete">
    <Type>Physics</Type>
    <Deployment name="wien2k" kind="executable" path="/opt/wien2k/bin/run"/>
  </Entry>
  <Entry name="Imaging" kind="abstract">
    <Type>Root</Type>
  </Entry>
</Registry>
"""
)


class TestQueries:
    def test_descendant_by_attr(self):
        res = xpath_find(DOC, "//Entry[@name='JPOVray']")
        assert len(res) == 1
        assert res[0].get("kind") == "concrete"

    def test_child_path(self):
        res = xpath_find(DOC, "/Registry/Entry/Deployment")
        assert len(res) == 3

    def test_attribute_extraction(self):
        res = xpath_find(DOC, "//Deployment[@kind='executable']/@path")
        assert res == ["/opt/jpovray/bin/jpovray", "/opt/wien2k/bin/run"]

    def test_child_value_predicate(self):
        res = xpath_find(DOC, "//Entry[Type='Imaging']")
        assert [e.get("name") for e in res] == ["JPOVray"]

    def test_text_extraction(self):
        res = xpath_find(DOC, "//Entry[@name='Wien2k']/Type/text()")
        assert res == ["Physics"]

    def test_positional_predicate(self):
        res = xpath_find(DOC, "/Registry/Entry[2]")
        assert [e.get("name") for e in res] == ["Wien2k"]

    def test_wildcard(self):
        res = xpath_find(DOC, "/Registry/*")
        assert len(res) == 3

    def test_attr_existence_predicate(self):
        res = xpath_find(DOC, "//Deployment[@path]")
        assert len(res) == 3

    def test_multiple_predicates(self):
        res = xpath_find(DOC, "//Entry[@kind='concrete'][Type='Physics']")
        assert [e.get("name") for e in res] == ["Wien2k"]

    def test_no_match_returns_empty(self):
        assert xpath_find(DOC, "//Entry[@name='nothing']") == []

    def test_forest_evaluation(self):
        doc2 = parse_xml('<Registry><Entry name="Extra" kind="concrete"/></Registry>')
        q = XPathQuery.compile("//Entry")
        results, _ = q.evaluate([DOC, doc2])
        assert len(results) == 4


class TestVisitAccounting:
    def test_visits_scale_with_document_size(self):
        """The MDS cost model: bigger aggregate => more nodes visited."""
        q = XPathQuery.compile("//Entry[@name='target']")
        small = parse_xml("<R>" + "<Entry name='x'/>" * 10 + "</R>")
        large = parse_xml("<R>" + "<Entry name='x'/>" * 200 + "</R>")
        _, visits_small = q.evaluate(small)
        _, visits_large = q.evaluate(large)
        assert visits_large > 10 * visits_small / 2
        assert visits_large > visits_small

    def test_visits_positive_even_without_match(self):
        _, visits = XPathQuery.compile("//Nope").evaluate(DOC)
        assert visits >= DOC.count_nodes()


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "//Entry[@name=unquoted]",
            "//@attr/Entry",
            "//text()/Entry",
            "@name",
            "//Entry[]",
        ],
    )
    def test_rejects_bad_expressions(self, bad):
        with pytest.raises(XPathError):
            XPathQuery.compile(bad)

    def test_compile_is_reusable(self):
        q = XPathQuery.compile("//Entry")
        r1, _ = q.evaluate(DOC)
        r2, _ = q.evaluate(DOC)
        assert len(r1) == len(r2) == 3
