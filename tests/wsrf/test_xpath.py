"""Unit tests for the XPath-subset engine."""

import pytest

from repro.wsrf.xmldoc import parse_xml
from repro.wsrf.xpath import XPathError, XPathQuery, xpath_find

DOC = parse_xml(
    """
<Registry>
  <Entry name="JPOVray" kind="concrete">
    <Type>Imaging</Type>
    <Deployment name="jpovray" kind="executable" path="/opt/jpovray/bin/jpovray"/>
    <Deployment name="WS-JPOVray" kind="service" path="https://s3/wsrf/povray"/>
  </Entry>
  <Entry name="Wien2k" kind="concrete">
    <Type>Physics</Type>
    <Deployment name="wien2k" kind="executable" path="/opt/wien2k/bin/run"/>
  </Entry>
  <Entry name="Imaging" kind="abstract">
    <Type>Root</Type>
  </Entry>
</Registry>
"""
)


class TestQueries:
    def test_descendant_by_attr(self):
        res = xpath_find(DOC, "//Entry[@name='JPOVray']")
        assert len(res) == 1
        assert res[0].get("kind") == "concrete"

    def test_child_path(self):
        res = xpath_find(DOC, "/Registry/Entry/Deployment")
        assert len(res) == 3

    def test_attribute_extraction(self):
        res = xpath_find(DOC, "//Deployment[@kind='executable']/@path")
        assert res == ["/opt/jpovray/bin/jpovray", "/opt/wien2k/bin/run"]

    def test_child_value_predicate(self):
        res = xpath_find(DOC, "//Entry[Type='Imaging']")
        assert [e.get("name") for e in res] == ["JPOVray"]

    def test_text_extraction(self):
        res = xpath_find(DOC, "//Entry[@name='Wien2k']/Type/text()")
        assert res == ["Physics"]

    def test_positional_predicate(self):
        res = xpath_find(DOC, "/Registry/Entry[2]")
        assert [e.get("name") for e in res] == ["Wien2k"]

    def test_wildcard(self):
        res = xpath_find(DOC, "/Registry/*")
        assert len(res) == 3

    def test_attr_existence_predicate(self):
        res = xpath_find(DOC, "//Deployment[@path]")
        assert len(res) == 3

    def test_multiple_predicates(self):
        res = xpath_find(DOC, "//Entry[@kind='concrete'][Type='Physics']")
        assert [e.get("name") for e in res] == ["Wien2k"]

    def test_no_match_returns_empty(self):
        assert xpath_find(DOC, "//Entry[@name='nothing']") == []

    def test_forest_evaluation(self):
        doc2 = parse_xml('<Registry><Entry name="Extra" kind="concrete"/></Registry>')
        q = XPathQuery.compile("//Entry")
        results, _ = q.evaluate([DOC, doc2])
        assert len(results) == 4


class TestVisitAccounting:
    def test_visits_scale_with_document_size(self):
        """The MDS cost model: bigger aggregate => more nodes visited."""
        q = XPathQuery.compile("//Entry[@name='target']")
        small = parse_xml("<R>" + "<Entry name='x'/>" * 10 + "</R>")
        large = parse_xml("<R>" + "<Entry name='x'/>" * 200 + "</R>")
        _, visits_small = q.evaluate(small)
        _, visits_large = q.evaluate(large)
        assert visits_large > 10 * visits_small / 2
        assert visits_large > visits_small

    def test_visits_positive_even_without_match(self):
        _, visits = XPathQuery.compile("//Nope").evaluate(DOC)
        assert visits >= DOC.count_nodes()


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "//Entry[@name=unquoted]",
            "//@attr/Entry",
            "//text()/Entry",
            "@name",
            "//Entry[]",
        ],
    )
    def test_rejects_bad_expressions(self, bad):
        with pytest.raises(XPathError):
            XPathQuery.compile(bad)

    def test_compile_is_reusable(self):
        q = XPathQuery.compile("//Entry")
        r1, _ = q.evaluate(DOC)
        r2, _ = q.evaluate(DOC)
        assert len(r1) == len(r2) == 3


class TestFusedDescendantWalk:
    """The fused ``walk_matching`` path must agree with the grouped path."""

    QUERIES = [
        "//Entry",
        "//Entry[@name='JPOVray']",
        "//Deployment[@kind='executable']",
        "//Entry/Deployment",
        "//Entry//Deployment",
        "/Registry//Deployment[@kind='service']/@path",
        "//Entry[Type='Imaging']",
        "//*",
        "//Entry/Type/text()",
    ]

    def _grouped_reference(self, expression, roots):
        """Reference result computed without the fused fast path."""
        from repro.wsrf import xpath as xp

        query = XPathQuery._compile_uncached(expression)
        # emulate the pre-fusion engine: preorder + _filter per root/group
        visits = 0
        current = []
        first = query.steps[0]
        for root in roots:
            if first.axis == "descendant":
                candidates = root.preorder()
            else:
                candidates = [root]
            matched, seen = xp._filter(candidates, first)
            visits += seen
            current.extend(matched)
        for step in query.steps[1:]:
            if step.is_attribute or step.is_text:
                break
            next_set = []
            for node in current:
                if step.axis == "descendant":
                    candidates = []
                    for child in node.children:
                        candidates.extend(child.preorder())
                else:
                    candidates = node.children
                matched, seen = xp._filter(candidates, step)
                visits += seen
                next_set.extend(matched)
            current = next_set
        last = query.steps[-1]
        if last.is_attribute and len(query.steps) > 1:
            name = last.test[1:]
            values = []
            for node in current:
                visits += 1
                if name == "*":
                    values.extend(node.attrib.values())
                elif name in node.attrib:
                    values.append(node.attrib[name])
            return values, visits
        if last.is_text and len(query.steps) > 1:
            texts = []
            for node in current:
                visits += 1
                if node.text.strip():
                    texts.append(node.text.strip())
            return texts, visits
        return list(current), visits

    @pytest.mark.parametrize("expression", QUERIES)
    def test_fused_matches_grouped_results_and_visits(self, expression):
        doc2 = parse_xml(
            '<Registry><Entry name="Extra" kind="concrete">'
            "<Type>Imaging</Type>"
            '<Deployment name="x" kind="executable" path="/opt/x"/>'
            "</Entry></Registry>"
        )
        forest = [DOC, doc2]
        fused = XPathQuery.compile(expression).evaluate(forest)
        reference = self._grouped_reference(expression, forest)
        assert fused == reference

    def test_position_predicate_stays_per_root(self):
        # [2] indexes within each root's candidate set, not the forest
        doc_a = parse_xml("<R><E n='a1'/><E n='a2'/></R>")
        doc_b = parse_xml("<R><E n='b1'/><E n='b2'/></R>")
        results, _ = XPathQuery.compile("//E[2]").evaluate([doc_a, doc_b])
        assert [e.get("n") for e in results] == ["a2", "b2"]


class TestCompileCache:
    def test_compile_memoizes(self):
        a = XPathQuery.compile("//Entry[@name='memo-test']")
        b = XPathQuery.compile("//Entry[@name='memo-test']")
        assert a is b

    def test_cache_is_bounded(self):
        from repro.wsrf.xpath import _COMPILE_CACHE, _COMPILE_CACHE_LIMIT

        for i in range(_COMPILE_CACHE_LIMIT + 10):
            XPathQuery.compile(f"//Bound{i}")
        assert len(_COMPILE_CACHE) <= _COMPILE_CACHE_LIMIT

    def test_bad_expressions_not_cached(self):
        from repro.wsrf.xpath import _COMPILE_CACHE

        with pytest.raises(XPathError):
            XPathQuery.compile("//Entry[]")
        assert "//Entry[]" not in _COMPILE_CACHE
